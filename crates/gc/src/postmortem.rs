//! Tail-pause attribution: who made the worst pauses slow, and what the
//! tail costs in energy.
//!
//! The paper's headline claim is about the *tail* — Charon shortens the
//! pauses that dominate p99, not the average — but a pause histogram only
//! says *that* p99 moved. [`Postmortem`] keeps, for the top-K worst
//! pauses per GC kind, everything needed to say *why*: the full
//! [`Breakdown`], the per-unit-class busy/queue deltas across that pause,
//! and the fault/recovery counters the pause absorbed. It also attributes
//! the per-collection [`EnergyAccount`] delta to pause-histogram buckets
//! (the exact [`charon_sim::hist`] partition, via
//! [`charon_sim::hist::bucket_index`]), so a report can answer "what does
//! a p99 pause cost in nJ and where did its time go".
//!
//! Zero-cost-when-off, like [`charon_sim::telemetry::Telemetry`] and
//! [`charon_sim::profile::Profiler`]: the collector holds an
//! `Option<Postmortem>`; `None` costs one branch per collection. Enabled,
//! capture is read-only over state the collector already computes —
//! snapshots before, deltas after — and never advances a simulated clock,
//! so every committed fingerprint is bit-identical with it on
//! (`fingerprint_baseline.rs` pins exactly that).

use crate::breakdown::Breakdown;
use crate::collector::GcKind;
use charon_core::device::{UnitClassStats, UNIT_CLASS_NAMES};
use charon_sim::energy::EnergyAccount;
use charon_sim::hist::{bucket_bounds, bucket_index, BUCKETS};
use charon_sim::json::Json;
use charon_sim::time::Ps;
use std::fmt;

/// What one unit-class pool did *during one pause*: busy/execution/wedge
/// deltas across the pause, plus the pool's queue high-water mark and
/// size at capture time (the high-water is a run-global monotone maximum,
/// not a per-pause delta — it answers "how deep had queues ever been by
/// this pause").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitDelta {
    /// Unit-busy time accumulated during the pause.
    pub busy: Ps,
    /// Executions served during the pause.
    pub executions: u64,
    /// Stall/wedge events absorbed during the pause.
    pub wedges: u64,
    /// Queue-depth high-water mark as of this pause (monotone over the run).
    pub queue_high_water: u64,
    /// Unit instances in the pool.
    pub total_units: u64,
}

impl UnitDelta {
    /// The delta from `before` to `after`, carrying the after-side
    /// high-water and pool size.
    pub fn capture(after: UnitClassStats, before: UnitClassStats) -> UnitDelta {
        UnitDelta {
            busy: after.busy - before.busy,
            executions: after.executions - before.executions,
            wedges: after.wedges - before.wedges,
            queue_high_water: after.queue_high_water,
            total_units: after.total_units,
        }
    }

    /// Pool utilization within a pause of length `wall`.
    pub fn utilization(&self, wall: Ps) -> f64 {
        let capacity = self.total_units * wall.0;
        if capacity == 0 {
            0.0
        } else {
            self.busy.0 as f64 / capacity as f64
        }
    }

    fn to_json(self, wall: Ps) -> Json {
        Json::obj(vec![
            ("busy_ps", Json::U64(self.busy.0)),
            ("executions", Json::U64(self.executions)),
            ("wedges", Json::U64(self.wedges)),
            ("queue_high_water", Json::U64(self.queue_high_water)),
            ("total_units", Json::U64(self.total_units)),
            ("utilization", Json::F64(self.utilization(wall))),
        ])
    }
}

/// Everything retained about one of the worst pauses.
#[derive(Debug, Clone)]
pub struct PauseRecord {
    /// Collection sequence number (index into the event log).
    pub seq: u64,
    /// Minor or major.
    pub kind: GcKind,
    /// Wall-clock start of the pause.
    pub start: Ps,
    /// Pause duration.
    pub wall: Ps,
    /// The full per-bucket time breakdown (recovery delta included).
    pub breakdown: Breakdown,
    /// Energy this collection drew (delta of the run account).
    pub energy: EnergyAccount,
    /// Per-unit-class activity during the pause (offloading backends).
    pub units: Option<[UnitDelta; 3]>,
}

impl PauseRecord {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("seq", Json::U64(self.seq)),
            ("start_ps", Json::U64(self.start.0)),
            ("wall_ps", Json::U64(self.wall.0)),
            ("breakdown", self.breakdown.to_json()),
            ("energy", self.energy.to_json()),
        ];
        if let Some(units) = &self.units {
            fields.push((
                "units",
                Json::Obj(
                    UNIT_CLASS_NAMES
                        .iter()
                        .zip(units.iter())
                        .map(|(&name, u)| (name.to_string(), u.to_json(self.wall)))
                        .collect(),
                ),
            ));
        }
        Json::obj(fields)
    }
}

/// Per-kind accumulation: the top-K list plus the bucketed energy table.
#[derive(Debug, Clone)]
struct KindLane {
    /// Worst pauses, longest first, at most `top_k`.
    worst: Vec<PauseRecord>,
    /// Pause count per histogram bucket (this IS the pause histogram).
    bucket_count: [u64; BUCKETS],
    /// Summed pause time per bucket, picoseconds.
    bucket_ps: [u64; BUCKETS],
    /// Summed energy draw per bucket.
    bucket_energy: Vec<EnergyAccount>,
}

impl KindLane {
    fn new() -> KindLane {
        KindLane {
            worst: Vec::new(),
            bucket_count: [0; BUCKETS],
            bucket_ps: [0; BUCKETS],
            bucket_energy: vec![EnergyAccount::default(); BUCKETS],
        }
    }

    fn pauses(&self) -> u64 {
        self.bucket_count.iter().sum()
    }

    fn energy_total(&self) -> EnergyAccount {
        let mut total = EnergyAccount::default();
        for e in &self.bucket_energy {
            total.accumulate(e);
        }
        total
    }

    /// Bucket index holding the p99 pause — same rank rule as
    /// [`charon_sim::hist::Histogram::try_quantile`]. `None` when no
    /// pause of this kind ran.
    fn p99_bucket(&self) -> Option<usize> {
        let count = self.pauses();
        if count == 0 {
            return None;
        }
        let rank = ((0.99 * count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.bucket_count.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(i);
            }
        }
        None
    }
}

/// Top-K worst-pause capture plus per-bucket energy attribution, per GC
/// kind. See the module docs for the design contract.
#[derive(Debug, Clone)]
pub struct Postmortem {
    top_k: usize,
    /// Indexed by kind: 0 = minor, 1 = major.
    lanes: [KindLane; 2],
}

fn lane_idx(kind: GcKind) -> usize {
    match kind {
        GcKind::Minor => 0,
        GcKind::Major => 1,
    }
}

impl Postmortem {
    /// A capture keeping the `top_k` worst pauses per kind (clamped to
    /// at least 1).
    pub fn new(top_k: usize) -> Postmortem {
        Postmortem { top_k: top_k.max(1), lanes: [KindLane::new(), KindLane::new()] }
    }

    /// The configured per-kind retention.
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// Folds one finished collection in. Called by the collector at the
    /// GC epilogue, after energy has been charged.
    pub fn observe(&mut self, rec: PauseRecord) {
        let lane = &mut self.lanes[lane_idx(rec.kind)];
        let b = bucket_index(rec.wall.0);
        lane.bucket_count[b] += 1;
        lane.bucket_ps[b] += rec.wall.0;
        lane.bucket_energy[b].accumulate(&rec.energy);
        // Keep `worst` sorted longest-first; ties keep the earlier pause
        // (first occurrence wins, like a stable sort by descending wall).
        let pos = lane.worst.iter().position(|w| w.wall < rec.wall).unwrap_or(lane.worst.len());
        if pos < self.top_k {
            lane.worst.insert(pos, rec);
            lane.worst.truncate(self.top_k);
        }
    }

    /// Pauses observed for `kind`.
    pub fn pauses(&self, kind: GcKind) -> u64 {
        self.lanes[lane_idx(kind)].pauses()
    }

    /// The retained worst pauses for `kind`, longest first.
    pub fn worst(&self, kind: GcKind) -> &[PauseRecord] {
        &self.lanes[lane_idx(kind)].worst
    }

    /// Summed energy attributed to `kind`'s pauses.
    pub fn energy_by_kind(&self, kind: GcKind) -> EnergyAccount {
        self.lanes[lane_idx(kind)].energy_total()
    }

    /// Summed energy over both kinds and all buckets. Because energy is
    /// charged exactly once per collection
    /// ([`crate::system::System::charge_gc_energy`]), this telescopes to
    /// the run's final [`EnergyAccount`] up to f64 rounding — the
    /// conservation property the postmortem proptest pins.
    pub fn energy_total(&self) -> EnergyAccount {
        let mut total = self.energy_by_kind(GcKind::Minor);
        total.accumulate(&self.energy_by_kind(GcKind::Major));
        total
    }

    /// `(bucket index, count, summed ps, summed energy)` rows for the
    /// non-empty buckets of `kind`, ascending.
    pub fn energy_buckets(&self, kind: GcKind) -> Vec<(usize, u64, u64, &EnergyAccount)> {
        let lane = &self.lanes[lane_idx(kind)];
        (0..BUCKETS)
            .filter(|&i| lane.bucket_count[i] > 0)
            .map(|i| (i, lane.bucket_count[i], lane.bucket_ps[i], &lane.bucket_energy[i]))
            .collect()
    }

    /// The bucket holding `kind`'s p99 pause with its count and summed
    /// energy: the "what does a p99 pause cost" answer. `None` when no
    /// pause of this kind ran.
    pub fn p99_cost(&self, kind: GcKind) -> Option<(usize, u64, EnergyAccount)> {
        let lane = &self.lanes[lane_idx(kind)];
        let b = lane.p99_bucket()?;
        Some((b, lane.bucket_count[b], lane.bucket_energy[b].clone()))
    }

    /// Machine-readable view; round-trips through [`Json::parse`].
    pub fn to_json(&self) -> Json {
        let lane_json = |kind: GcKind| {
            let lane = &self.lanes[lane_idx(kind)];
            let buckets = self
                .energy_buckets(kind)
                .into_iter()
                .map(|(i, count, ps, energy)| {
                    let (lo, hi) = bucket_bounds(i);
                    Json::obj(vec![
                        ("lo", Json::U64(lo)),
                        ("hi", Json::U64(hi)),
                        ("count", Json::U64(count)),
                        ("pause_ps", Json::U64(ps)),
                        ("energy", energy.to_json()),
                    ])
                })
                .collect();
            let p99 = match self.p99_cost(kind) {
                None => Json::Null,
                Some((b, count, energy)) => {
                    let (lo, hi) = bucket_bounds(b);
                    Json::obj(vec![
                        ("lo", Json::U64(lo)),
                        ("hi", Json::U64(hi)),
                        ("count", Json::U64(count)),
                        ("energy", energy.to_json()),
                    ])
                }
            };
            Json::obj(vec![
                ("pauses", Json::U64(lane.pauses())),
                ("energy", lane.energy_total().to_json()),
                ("p99_bucket", p99),
                ("buckets", Json::Arr(buckets)),
                ("worst", Json::Arr(lane.worst.iter().map(PauseRecord::to_json).collect())),
            ])
        };
        Json::obj(vec![
            ("top_k", Json::U64(self.top_k as u64)),
            ("minor", lane_json(GcKind::Minor)),
            ("major", lane_json(GcKind::Major)),
        ])
    }
}

impl fmt::Display for Postmortem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "postmortem (top {} per kind):", self.top_k)?;
        for kind in [GcKind::Minor, GcKind::Major] {
            let lane = &self.lanes[lane_idx(kind)];
            if lane.pauses() == 0 {
                writeln!(f, "{kind}: no pauses")?;
                continue;
            }
            let total = lane.energy_total();
            writeln!(f, "{kind}: {} pauses, energy {:.4e} J", lane.pauses(), total.total_j())?;
            if let Some((b, count, energy)) = self.p99_cost(kind) {
                let (lo, hi) = bucket_bounds(b);
                let share = if total.total_j() > 0.0 { energy.total_j() / total.total_j() * 100.0 } else { 0.0 };
                writeln!(
                    f,
                    "  p99 bucket [{}, {}]: {count} pauses, {:.1} nJ each on average ({share:.1}% of {kind} energy)",
                    Ps(lo),
                    Ps(hi),
                    energy.total_j() / count as f64 * 1e9
                )?;
            }
            for (rank, rec) in lane.worst.iter().enumerate() {
                write!(f, "  worst #{}: seq={} start={} wall={}", rank + 1, rec.seq, rec.start, rec.wall)?;
                if let Some((b, frac)) = rec.breakdown.dominant() {
                    write!(f, " dominant={b} ({:.1}%)", frac * 100.0)?;
                }
                writeln!(f)?;
                writeln!(f, "    breakdown: {}", rec.breakdown)?;
                writeln!(f, "    energy: {:.1} nJ ({})", rec.energy.total_j() * 1e9, rec.energy)?;
                if let Some(units) = &rec.units {
                    for (&name, u) in UNIT_CLASS_NAMES.iter().zip(units.iter()) {
                        if u.executions == 0 && u.busy == Ps::ZERO {
                            continue;
                        }
                        writeln!(
                            f,
                            "    unit {name}: util={:.1}% busy={} execs={} wedges={} qhw={} x{}",
                            u.utilization(rec.wall) * 100.0,
                            u.busy,
                            u.executions,
                            u.wedges,
                            u.queue_high_water,
                            u.total_units
                        )?;
                    }
                }
                let recovery = rec.breakdown.recovery();
                if !recovery.is_empty() {
                    writeln!(f, "    recovery: {recovery}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breakdown::Bucket;

    fn rec(kind: GcKind, seq: u64, wall: u64, joules: f64) -> PauseRecord {
        let mut breakdown = Breakdown::new();
        breakdown.record(Bucket::Copy, Ps(wall * 3 / 4));
        breakdown.record(Bucket::Other, Ps(wall / 4));
        PauseRecord {
            seq,
            kind,
            start: Ps(seq * 1000),
            wall: Ps(wall),
            breakdown,
            energy: EnergyAccount { dram_j: joules, ..EnergyAccount::default() },
            units: None,
        }
    }

    #[test]
    fn keeps_top_k_longest_first() {
        let mut pm = Postmortem::new(2);
        for (seq, wall) in [(0, 100), (1, 900), (2, 500), (3, 950)] {
            pm.observe(rec(GcKind::Minor, seq, wall, 0.0));
        }
        let worst = pm.worst(GcKind::Minor);
        assert_eq!(worst.len(), 2);
        assert_eq!((worst[0].seq, worst[0].wall.0), (3, 950));
        assert_eq!((worst[1].seq, worst[1].wall.0), (1, 900));
        assert!(pm.worst(GcKind::Major).is_empty());
        assert_eq!(pm.pauses(GcKind::Minor), 4, "bucket table still counts every pause");
    }

    #[test]
    fn ties_keep_the_earlier_pause() {
        let mut pm = Postmortem::new(1);
        pm.observe(rec(GcKind::Major, 5, 700, 0.0));
        pm.observe(rec(GcKind::Major, 9, 700, 0.0));
        assert_eq!(pm.worst(GcKind::Major)[0].seq, 5);
    }

    #[test]
    fn bucket_energy_conserves_and_follows_hist_partition() {
        let mut pm = Postmortem::new(3);
        // 100 and 120 share bucket [64, 127]; 5000 lands in [4096, 8191].
        pm.observe(rec(GcKind::Minor, 0, 100, 1.0));
        pm.observe(rec(GcKind::Minor, 1, 120, 2.0));
        pm.observe(rec(GcKind::Minor, 2, 5000, 4.0));
        pm.observe(rec(GcKind::Major, 3, 5000, 8.0));
        assert!((pm.energy_total().total_j() - 15.0).abs() < 1e-12);
        assert!((pm.energy_by_kind(GcKind::Major).total_j() - 8.0).abs() < 1e-12);
        let rows = pm.energy_buckets(GcKind::Minor);
        assert_eq!(rows.len(), 2);
        let (i, count, ps, energy) = rows[0];
        assert_eq!((bucket_bounds(i), count, ps), ((64, 127), 2, 220));
        assert!((energy.total_j() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn p99_cost_names_the_tail_bucket() {
        let mut pm = Postmortem::new(1);
        for seq in 0..99 {
            pm.observe(rec(GcKind::Minor, seq, 100, 0.001));
        }
        // Two slow pauses: with 101 samples the Histogram rank rule
        // (ceil(0.99·n), shared via bucket_index/bucket_bounds) puts
        // rank 100 in the slow bucket. A single outlier among 100 is
        // NOT the p99 under that rule — rank 99 is still fast.
        pm.observe(rec(GcKind::Minor, 99, 100_000, 5.0));
        pm.observe(rec(GcKind::Minor, 100, 100_000, 5.0));
        let (b, count, energy) = pm.p99_cost(GcKind::Minor).expect("pauses ran");
        assert_eq!(b, bucket_index(100_000), "p99 of 99×fast + 2×slow is the slow bucket");
        assert_eq!(count, 2);
        assert!((energy.total_j() - 10.0).abs() < 1e-12);
        assert!(pm.p99_cost(GcKind::Major).is_none());
    }

    #[test]
    fn json_round_trips_and_display_renders() {
        let mut pm = Postmortem::new(2);
        let mut r = rec(GcKind::Minor, 0, 2048, 0.5);
        r.units = Some([
            UnitDelta { busy: Ps(512), executions: 4, wedges: 0, queue_high_water: 7, total_units: 2 },
            UnitDelta::default(),
            UnitDelta::default(),
        ]);
        pm.observe(r);
        let j = pm.to_json();
        let back = Json::parse(&j.to_string()).expect("postmortem json parses");
        assert_eq!(back.get("top_k").and_then(Json::as_u64), Some(2));
        let minor = back.get("minor").unwrap();
        assert_eq!(minor.get("pauses").and_then(Json::as_u64), Some(1));
        let worst = minor.get("worst").and_then(Json::as_arr).unwrap();
        assert_eq!(worst.len(), 1);
        let units = worst[0].get("units").expect("unit deltas serialized");
        assert_eq!(
            units
                .get("copy_search")
                .and_then(|u| u.get("queue_high_water"))
                .and_then(Json::as_u64),
            Some(7)
        );
        assert!(matches!(back.get("major").and_then(|m| m.get("p99_bucket")), Some(Json::Null)));
        let s = pm.to_string();
        assert!(s.contains("worst #1"), "{s}");
        assert!(s.contains("dominant=Copy"), "{s}");
        assert!(s.contains("unit copy_search"), "{s}");
        assert!(s.contains("MajorGC: no pauses"), "{s}");
    }
}
