//! # charon-gc — ParallelScavenge with offloadable primitives
//!
//! A functional + timed reproduction of HotSpot's throughput-oriented
//! generational collector (`ParallelScavenge`, §2 of the Charon paper),
//! structured around the paper's central idea: the collector's logic stays
//! on the host, while its four dominant *primitives* — **Copy**, **Search**,
//! **Scan&Push**, **Bitmap Count** — are routed through a pluggable backend:
//!
//! | Backend | Meaning | Paper platform |
//! |---------|---------|----------------|
//! | [`system::Backend::Host`] | primitives execute on host cores | DDR4 / HMC bars of Fig. 12 |
//! | [`system::Backend::Charon`] | offloaded to the near-memory device | Charon bar |
//! | [`system::Backend::CpuSideCharon`] | offloaded to CPU-side units | Fig. 16 |
//! | [`system::Backend::Ideal`] | primitives take zero time | Ideal bar |
//!
//! Modules:
//!
//! * [`system`] — the simulated machine (host + fabric + optional device)
//!   and the per-backend primitive timing paths,
//! * [`costs`] — the calibrated instruction-cost model for host-side GC code,
//! * [`breakdown`] — the Fig. 4 time buckets,
//! * [`threads`] — deterministic simulated GC threads over shared memory
//!   resources,
//! * [`minor`] — the MinorGC scavenge (Fig. 3a),
//! * [`major`] — the MajorGC mark–summarize–adjust–compact (Fig. 3b),
//! * [`marksweep`] — a CMS-like old-generation mark-sweep (no compaction),
//!   demonstrating primitive applicability beyond ParallelScavenge (Table 1),
//! * [`freelist`] — size-segregated free queues backing a non-moving old
//!   generation: recycle on sweep, coalesce on exhaustion, allocation from
//!   dead ranges instead of the bump frontier,
//! * [`concmark`] — an incremental concurrent marker: bounded per-zone mark
//!   steps interleaved with mutator allocation, card-table write-barrier
//!   dirtying, and a stop-the-world remark + Bitmap-Count sweep (`cms`),
//! * [`g1lite`] — a Garbage-First-style mixed collection (region liveness
//!   from Bitmap Count, garbage-first evacuation) — Table 1's G1 row,
//! * [`collector`] — the top-level [`collector::Collector`] driving both
//!   GCs with HotSpot's sizing/triggering policy; [`collector::CollectorKind`]
//!   selects which old-generation collector the Major arm dispatches to,
//! * [`census`] — opt-in per-GC heap demographics (per-klass live/dead,
//!   survivor ages, dead-bytes fraction — the paper's Figs. 2/5 input),
//! * [`postmortem`] — opt-in tail-pause attribution: top-K worst pauses
//!   per kind with full breakdown/unit/energy context, plus per-bucket
//!   energy attribution (zero-cost when off),
//! * [`gclog`] — `-verbose:gc`-style log rendering of the event stream,
//! * [`trace`] — trace-driven re-timing: record a collection's operation
//!   stream once, replay it on any machine configuration,
//! * [`verify`] — heap-graph signatures used by tests to prove collections
//!   preserve the reachable object graph.

pub mod adapt;
pub mod breakdown;
pub mod census;
pub mod collector;
pub mod concmark;
pub mod costs;
pub mod freelist;
pub mod g1lite;
pub mod gclog;
pub mod integrity;
pub mod major;
pub mod marksweep;
pub mod minor;
pub mod postmortem;
pub mod system;
pub mod threads;
pub mod trace;
pub mod verify;

pub use breakdown::{Breakdown, Bucket};
pub use collector::{Collector, CollectorKind, GcEvent, GcKind};
pub use system::{Backend, System};
