//! MajorGC — mark, summarize, adjust, compact (Fig. 3b).
//!
//! * **Marking**: drain the object stack with *Scan&Push*; `mark_obj` sets
//!   begin/end bitmap bits (through the bitmap cache when offloaded).
//! * **Summary**: *Bitmap Count* every compaction region to compute
//!   per-region destinations (and, as HotSpot's `ParallelCompactData`
//!   does, per-128-word-block live prefixes so later queries scan at most
//!   one block).
//! * **Adjust**: rewrite every reference (and root) to its target's new
//!   location — `new_addr(X) = dest_prefix(region) + block_prefix +
//!   live_words_in_range(block_start, X)`, the hot *Bitmap Count* use.
//! * **Compact**: *Copy* every live object left-ward; the heap ends packed
//!   against its base with the entire young generation empty.
//!
//! The paper notes the summary phase itself is negligible (<0.03% — its
//! footnote 2); what it calls *Bitmap Count* time is the bitmap work
//! charged here across summary and adjust.

use crate::breakdown::{Breakdown, Bucket};
use crate::system::{Backend, System};
use crate::threads::GcThreads;
use charon_core::device::{ScanAction, ScanRef};
use charon_heap::addr::{VAddr, VRange};
use charon_heap::heap::JavaHeap;
use charon_heap::markbitmap::{live_words_fast, mark_object};
use charon_heap::object::{self, MarkState};
use charon_heap::objstack::ObjStack;
use charon_sim::cache::AccessKind;
use charon_sim::telemetry::Event;

/// Heap words per compaction region (HotSpot `ParallelCompactData`
/// regions; 512 words = 4 KB).
pub const REGION_WORDS: u64 = 512;

/// Outcome counters of one MajorGC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MajorStats {
    /// Live bytes after compaction.
    pub live_bytes: u64,
    /// Bytes physically moved by the compaction.
    pub moved_bytes: u64,
    /// Objects marked live.
    pub marked_objects: u64,
    /// Compaction regions summarized.
    pub regions: u64,
    /// Peak marking-stack depth.
    pub stack_max: usize,
    /// Weak referents cleared by reference processing.
    pub cleared_weak_refs: u64,
}

fn offloaded(sys: &System, hardware_iterable: bool) -> bool {
    match sys.backend {
        Backend::Host => false,
        Backend::Charon | Backend::CpuSideCharon => hardware_iterable,
        Backend::Ideal => true,
    }
}

/// One compaction region's summary data.
#[derive(Debug, Clone)]
struct Region {
    range: VRange,
    /// Live words in every region before this one (all spaces).
    dest_prefix_words: u64,
    /// Whether an object is open at the region's start.
    carry_in: bool,
}

/// The compaction plan: regions + block tables over every used range.
#[derive(Debug, Clone)]
pub struct CompactPlan {
    regions: Vec<Region>,
    dest_base: VAddr,
    total_live_words: u64,
}

impl CompactPlan {
    fn region_of(&self, a: VAddr) -> &Region {
        // Regions are address-sorted; partition_point finds the last
        // region starting at or before `a`.
        let i = self.regions.partition_point(|r| r.range.start <= a);
        let r = &self.regions[i - 1];
        debug_assert!(r.range.contains(a), "{a} not in any summarized region");
        r
    }

    /// Total live words across the heap.
    pub fn total_live_words(&self) -> u64 {
        self.total_live_words
    }

    /// Where compaction packs objects.
    pub fn dest_base(&self) -> VAddr {
        self.dest_base
    }

    /// The new location of the live object at `obj`, plus the bitmap span
    /// the query scanned (for timing). As HotSpot's `calc_new_pointer`
    /// does, the query is `region.destination() + live_words_in_range(
    /// region_start, obj)` — this per-reference call is the hot *Bitmap
    /// Count* use the paper offloads (Fig. 8).
    pub fn new_addr(&self, heap: &JavaHeap, obj: VAddr) -> (VAddr, VRange) {
        let r = self.region_of(obj);
        let (tail, _, _) = live_words_fast(&heap.mem, heap.beg_map(), heap.end_map(), r.range.start, obj, r.carry_in);
        let words = r.dest_prefix_words + tail;
        (self.dest_base.add_words(words), VRange::new(r.range.start, obj))
    }

    /// Like [`CompactPlan::new_addr`], but through a per-GC-thread
    /// last-query cache — HotSpot's `ParMarkBitMap::live_words_in_range`
    /// keeps exactly this cache per `ParCompactionManager`: when the new
    /// query extends the previous one within the same region, only the
    /// delta `[last_target, target)` is scanned. The returned span is what
    /// was actually read (possibly empty).
    pub fn new_addr_cached(&self, heap: &JavaHeap, cache: &mut LastQuery, obj: VAddr) -> (VAddr, VRange) {
        let r = self.region_of(obj);
        let (span_start, carry_in, base_live) = if cache.region_start == Some(r.range.start) && obj >= cache.last_addr {
            (cache.last_addr, cache.carry, cache.live_words)
        } else {
            (r.range.start, r.carry_in, 0)
        };
        let (delta, carry_out, _) =
            live_words_fast(&heap.mem, heap.beg_map(), heap.end_map(), span_start, obj, carry_in);
        let live = base_live + delta;
        *cache = LastQuery { region_start: Some(r.range.start), last_addr: obj, live_words: live, carry: carry_out };
        (self.dest_base.add_words(r.dest_prefix_words + live), VRange::new(span_start, obj))
    }
}

/// HotSpot's per-compaction-manager live-words query cache (see
/// [`CompactPlan::new_addr_cached`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct LastQuery {
    region_start: Option<VAddr>,
    last_addr: VAddr,
    live_words: u64,
    carry: bool,
}

/// Runs one MajorGC.
pub fn major_gc(sys: &mut System, heap: &mut JavaHeap, threads: &mut GcThreads) -> (Breakdown, MajorStats) {
    let mut bd = Breakdown::new();
    let mut st = MajorStats::default();
    let cores = sys.host.cores();
    let seq = sys.collection_seq;
    let mut stack = ObjStack::new(heap.layout().major_stack);

    // Prologue.
    {
        let now = threads.clock(0);
        let end = sys.gc_prologue(now);
        bd.record(Bucket::Other, end - now);
        threads.advance(0, end, false);
        threads.barrier();
    }

    let p0 = threads.max_clock();
    let discovered = mark_phase(sys, heap, threads, &mut bd, &mut st, &mut stack, cores);
    st.stack_max = stack.max_depth();
    let p1 = threads.max_clock();
    sys.telemetry.record(|| Event::Phase { seq, name: "mark", start: p0, end: p1 });
    // Reference processing: clear weak referents that marking never
    // reached strongly — before the summary, so their space is reclaimed
    // and the adjust phase never follows a dangling weak edge.
    for slot in discovered {
        let v = heap.read_ref(slot);
        if !v.is_null() && object::mark_state(&heap.mem, v) != MarkState::Marked {
            heap.write_ref(slot, VAddr::NULL);
            st.cleared_weak_refs += 1;
        }
        let t = threads.least_loaded();
        let now = threads.clock(t);
        let end = sys.host_op(t % cores, now, 10, &[(slot, AccessKind::Write)]);
        bd.record(Bucket::Other, end - now);
        threads.advance(t, end, true);
    }
    threads.barrier();
    let p2 = threads.max_clock();
    sys.telemetry.record(|| Event::Phase { seq, name: "refs", start: p1, end: p2 });
    {
        let now = threads.clock(0);
        let end = sys.flush_bitmap_cache(now);
        bd.record(Bucket::Other, end - now);
        threads.advance(0, end, false);
        threads.barrier();
    }
    // End-of-mark integrity sweep: the summary phase trusts bitmap
    // population counts, so any bitmap damage must be found (and the
    // extents rebuilt from the still-honest headers) before it runs.
    {
        let now = threads.clock(0);
        let end = crate::integrity::verify_marks(sys, heap, 0, now);
        if end > now {
            bd.record(Bucket::Other, end - now);
            threads.advance(0, end, false);
        }
        threads.barrier();
    }

    let p3 = threads.max_clock();
    let plan = summary_phase(sys, heap, threads, &mut bd, &mut st, cores);
    threads.barrier();
    sys.note_phase_barrier();
    let p4 = threads.max_clock();
    sys.telemetry
        .record(|| Event::Phase { seq, name: "summary", start: p3, end: p4 });

    adjust_phase(sys, heap, threads, &mut bd, &plan, cores);
    threads.barrier();
    sys.note_phase_barrier();
    let p5 = threads.max_clock();
    sys.telemetry
        .record(|| Event::Phase { seq, name: "adjust", start: p4, end: p5 });

    compact_phase(sys, heap, threads, &mut bd, &mut st, &plan, cores);
    threads.barrier();
    sys.note_phase_barrier();
    let p6 = threads.max_clock();
    sys.telemetry
        .record(|| Event::Phase { seq, name: "compact", start: p5, end: p6 });
    {
        let now = threads.clock(0);
        let end = sys.flush_bitmap_cache(now);
        bd.record(Bucket::Other, end - now);
        threads.advance(0, end, false);
    }

    epilogue(sys, heap, threads, &mut bd, &plan, cores);
    threads.barrier();
    let p7 = threads.max_clock();
    sys.telemetry
        .record(|| Event::Phase { seq, name: "epilogue", start: p6, end: p7 });
    (bd, st)
}

/// The used ranges of every space, in address order.
fn used_ranges(heap: &JavaHeap) -> Vec<VRange> {
    let mut v = Vec::new();
    for r in [heap.old().used_region(), heap.eden().used_region(), heap.from_space().used_region()] {
        if !r.is_empty() {
            v.push(r);
        }
    }
    v.sort_by_key(|r| r.start);
    v
}

pub(crate) fn mark_phase(
    sys: &mut System,
    heap: &mut JavaHeap,
    threads: &mut GcThreads,
    bd: &mut Breakdown,
    st: &mut MajorStats,
    stack: &mut ObjStack,
    cores: usize,
) -> Vec<VAddr> {
    let mut discovered: Vec<VAddr> = Vec::new();
    // Roots.
    for idx in 0..heap.root_count() {
        let slot = heap.root_slot_addr(idx);
        let r = heap.read_ref(slot);
        let t = threads.least_loaded();
        let now = threads.clock(t);
        let end = sys.host_op(t % cores, now, sys.costs.root_per_slot, &[(slot, AccessKind::Read)]);
        bd.record(Bucket::Other, end - now);
        threads.advance(t, end, true);
        if !r.is_null() && object::mark_state(&heap.mem, r) != MarkState::Marked {
            let size = mark_one(heap, r);
            st.marked_objects += 1;
            let now = threads.clock(t);
            let s = stack.push(r);
            let end = sys.host_op(t % cores, now, sys.costs.push, &[(r, AccessKind::Write), (s, AccessKind::Write)]);
            bd.record(Bucket::Push, end - now);
            threads.advance(t, end, true);
            let now = threads.clock(t);
            let iend = crate::integrity::after_mark(sys, heap, t % cores, now, r, size);
            if iend > now {
                bd.record(Bucket::Other, iend - now);
                threads.advance(t, iend, true);
            }
        }
    }

    // Drain: follow_contents.
    while let Some((obj, slot_addr)) = stack.pop() {
        let t = threads.least_loaded();
        let now = threads.clock(t);
        let end = sys.host_op(t % cores, now, sys.costs.pop, &[(slot_addr, AccessKind::Read), (obj, AccessKind::Read)]);
        bd.record(Bucket::Pop, end - now);
        threads.advance(t, end, true);

        let kind = heap.obj_klass(obj).kind();
        let slots = heap.ref_slots(obj);
        if slots.is_empty() {
            continue;
        }
        // Weak referent of an InstanceRef holder: discovered, not marked.
        let weak_slot = (kind == charon_heap::klass::KlassKind::InstanceRef).then(|| slots[0]);
        let mut refs = Vec::new();
        let mut marked: Vec<(VAddr, u64)> = Vec::new();
        for s in &slots {
            if weak_slot == Some(*s) {
                discovered.push(*s);
                continue;
            }
            let v = heap.read_ref(*s);
            if v.is_null() {
                continue;
            }
            if object::mark_state(&heap.mem, v) == MarkState::Marked {
                refs.push(ScanRef { referent: v, action: ScanAction::None });
            } else {
                let size = mark_one(heap, v);
                st.marked_objects += 1;
                let pushed = stack.push(v);
                marked.push((v, size));
                refs.push(ScanRef {
                    referent: v,
                    action: ScanAction::MarkAndPush {
                        beg_word: heap.beg_map().map_word_addr(v),
                        end_word: heap.end_map().map_word_addr(v.add_words(size - 1)),
                        stack_slot: pushed,
                    },
                });
            }
        }
        let fields_start = slots[0];
        let field_bytes = (slots.len() as u64) * 8;
        let hw = kind.charon_supported();
        let now = threads.clock(t);
        let end = sys.prim_scan_push(t % cores, now, fields_start, field_bytes, &refs, hw);
        bd.record(Bucket::ScanPush, end - now);
        threads.advance(t, end, !offloaded(sys, hw));
        if !marked.is_empty() {
            let now = threads.clock(t);
            let mut iend = now;
            for (obj, size) in marked {
                iend = crate::integrity::after_mark(sys, heap, t % cores, iend, obj, size);
            }
            if iend > now {
                bd.record(Bucket::ScanPush, iend - now);
                threads.advance(t, iend, true);
            }
        }
    }
    discovered
}

/// Marks one object: header state + begin/end bitmap bits. Returns the
/// object's size in words (already decoded for the end-bit placement).
fn mark_one(heap: &mut JavaHeap, obj: VAddr) -> u64 {
    object::set_marked(&mut heap.mem, obj);
    let size = heap.obj_size_words(obj);
    let (beg, end) = (*heap.beg_map(), *heap.end_map());
    mark_object(&mut heap.mem, &beg, &end, obj, size);
    size
}

fn summary_phase(
    sys: &mut System,
    heap: &mut JavaHeap,
    threads: &mut GcThreads,
    bd: &mut Breakdown,
    st: &mut MajorStats,
    cores: usize,
) -> CompactPlan {
    let mut regions = Vec::new();
    let mut prefix = 0u64;
    for range in used_ranges(heap) {
        let mut carry = false; // objects never span spaces
        let mut at = range.start;
        while at < range.end {
            let r_end = at.add_words(REGION_WORDS).min(range.end);
            let (live_in_region, carry_out, map_words) =
                live_words_fast(&heap.mem, heap.beg_map(), heap.end_map(), at, r_end, carry);

            let t = threads.least_loaded();
            let now = threads.clock(t);
            let span_bytes = (map_words / 2).max(1) * 8;
            let spans =
                [(heap.beg_map().map_word_addr(at), span_bytes), (heap.end_map().map_word_addr(at), span_bytes)];
            let end = sys.prim_bitmap_count(t % cores, now, &spans);
            bd.record(Bucket::BitmapCount, end - now);
            threads.advance(t, end, !offloaded(sys, true));

            regions.push(Region { range: VRange::new(at, r_end), dest_prefix_words: prefix, carry_in: carry });
            prefix += live_in_region;
            carry = carry_out;
            at = r_end;
            st.regions += 1;
        }
    }
    st.live_bytes = prefix * 8;
    assert!(
        heap.old().start().add_words(prefix) <= heap.old().end(),
        "compaction overflow: {} live bytes exceed the old generation — OutOfMemoryError",
        prefix * 8
    );
    CompactPlan { regions, dest_base: heap.old().start(), total_live_words: prefix }
}

/// Iterates live-object start addresses via the begin bitmap.
///
/// Objects are disjoint, so every set begin bit in a used range is a live
/// object start: one word-at-a-time pass over the map
/// ([`charon_heap::markbitmap::MarkBitmap::iter_set`]) replaces the
/// restart-per-hit `find_next_set` + header-decode loop.
fn live_objects(heap: &JavaHeap) -> Vec<VAddr> {
    let mut out = Vec::new();
    for range in used_ranges(heap) {
        out.extend(heap.beg_map().iter_set(&heap.mem, range.start, range.end));
    }
    out
}

fn adjust_phase(
    sys: &mut System,
    heap: &mut JavaHeap,
    threads: &mut GcThreads,
    bd: &mut Breakdown,
    plan: &CompactPlan,
    cores: usize,
) {
    // Adjust every reference field of every live object. The walk itself
    // is an independent stream; only the per-slot Bitmap Count lookups are
    // dependent work.
    let mut drain = charon_sim::time::Ps::ZERO;
    let mut caches = vec![LastQuery::default(); threads.len()];
    for obj in live_objects(heap) {
        let t = threads.least_loaded();
        let now = threads.clock(t);
        let map_word = heap.beg_map().map_word_addr(obj);
        let (cpu, mem) = sys.host_stream_op(
            t % cores,
            now,
            sys.costs.walk_per_obj,
            &[(map_word, AccessKind::Read), (obj, AccessKind::Read)],
        );
        bd.record(Bucket::Other, cpu - now);
        threads.advance(t, cpu, true);
        drain = drain.max(mem);

        for s in heap.ref_slots(obj) {
            let v = heap.read_ref(s);
            if v.is_null() {
                continue;
            }
            adjust_slot(sys, heap, threads, bd, plan, &mut caches, s, v, t, cores, &mut drain);
        }
    }
    // Adjust roots.
    for idx in 0..heap.root_count() {
        let slot = heap.root_slot_addr(idx);
        let v = heap.read_ref(slot);
        if v.is_null() {
            continue;
        }
        let t = threads.least_loaded();
        adjust_slot(sys, heap, threads, bd, plan, &mut caches, slot, v, t, cores, &mut drain);
    }
    threads.advance_all_to(drain);
}

#[allow(clippy::too_many_arguments)]
fn adjust_slot(
    sys: &mut System,
    heap: &mut JavaHeap,
    threads: &mut GcThreads,
    bd: &mut Breakdown,
    plan: &CompactPlan,
    caches: &mut [LastQuery],
    slot: VAddr,
    target: VAddr,
    t: usize,
    cores: usize,
    drain: &mut charon_sim::time::Ps,
) {
    debug_assert_eq!(object::mark_state(&heap.mem, target), MarkState::Marked, "dangling ref at {slot}");
    let (new, span) = plan.new_addr_cached(heap, &mut caches[t], target);
    heap.write_ref(slot, new);

    // Timing: the (possibly cached-incremental) Bitmap Count, then the
    // slot rewrite as a streamed store.
    charge_bitmap_query(sys, heap, threads, bd, t, cores, span);
    let now = threads.clock(t);
    let (cpu, mem) = sys.host_stream_op(t % cores, now, 4, &[(slot, AccessKind::Write)]);
    bd.record(Bucket::Other, cpu - now);
    threads.advance(t, cpu, true);
    *drain = (*drain).max(mem);
}

/// Charges one `live_words_in_range` query over `span`. Tiny incremental
/// tails (the common cached case, under four map words) stay on the host on
/// every backend — §3.3: "operations … are essentially single atomic
/// instructions whose potential benefits from offloading are outweighed by
/// the overheads due to their small offloading granularities". Larger scans
/// go through the Bitmap Count primitive.
fn charge_bitmap_query(
    sys: &mut System,
    heap: &JavaHeap,
    threads: &mut GcThreads,
    bd: &mut Breakdown,
    t: usize,
    cores: usize,
    span: VRange,
) {
    // Four 64-bit map words of coverage: 4 x 64 heap words x 8 B.
    const OFFLOAD_SPAN_BYTES: u64 = 4 * 64 * 8;
    let now = threads.clock(t);
    if span.is_empty() {
        let end = sys.host_op(t % cores, now, 6, &[]);
        bd.record(Bucket::BitmapCount, end - now);
        threads.advance(t, end, true);
        return;
    }
    let first = heap.beg_map().map_word_addr(span.start);
    let last = heap.beg_map().map_word_addr(VAddr(span.end.0 - 8).max(span.start));
    let bytes = (last - first) + 8;
    if span.bytes() < OFFLOAD_SPAN_BYTES {
        // Host fast path: a few map words through the cache hierarchy.
        let words = bytes / 8;
        let end = sys.host_op(
            t % cores,
            now,
            sys.costs.bitmap_per_map_word * words,
            &[(first, AccessKind::Read), (heap.end_map().map_word_addr(span.start), AccessKind::Read)],
        );
        bd.record(Bucket::BitmapCount, end - now);
        threads.advance(t, end, true);
    } else {
        let spans = [(first, bytes), (heap.end_map().map_word_addr(span.start), bytes)];
        let end = sys.prim_bitmap_count(t % cores, now, &spans);
        bd.record(Bucket::BitmapCount, end - now);
        threads.advance(t, end, !offloaded(sys, true));
    }
}

fn compact_phase(
    sys: &mut System,
    heap: &mut JavaHeap,
    threads: &mut GcThreads,
    bd: &mut Breakdown,
    st: &mut MajorStats,
    plan: &CompactPlan,
    cores: usize,
) {
    heap.bot_clear();
    let objs = live_objects(heap);
    let mut drain = charon_sim::time::Ps::ZERO;
    let mut caches = vec![LastQuery::default(); threads.len()];

    // Adjacent live objects that move by the same delta form one
    // contiguous run and are issued as a single Copy — dense live runs are
    // the common case after churn, and copying them object-by-object would
    // waste the primitive on tiny transfers (§3.3's granularity argument;
    // HotSpot's collector likewise moves whole dense regions).
    let mut run: Option<(VAddr, VAddr, u64)> = None; // (src, dst, words)
    let flush_run = |sys: &mut System,
                     heap: &mut JavaHeap,
                     threads: &mut GcThreads,
                     bd: &mut Breakdown,
                     run: &mut Option<(VAddr, VAddr, u64)>| {
        if let Some((src, dst, words)) = run.take() {
            if src != dst {
                heap.copy_object_words(src, dst, words);
                let t = threads.least_loaded();
                let now = threads.clock(t);
                let end = sys.prim_copy(t % cores, now, src, dst, words * 8);
                bd.record(Bucket::Copy, end - now);
                threads.advance(t, end, !offloaded(sys, true));
                // Integrity check of the copied payload — only when the run
                // did not overlap its source (a memmove-down overlap
                // destroys the source words the check and any rung-1
                // re-copy would need).
                if dst.add_words(words) <= src {
                    let now = threads.clock(t);
                    let iend = crate::integrity::after_copy(sys, heap, t % cores, now, src, dst, words);
                    if iend > now {
                        bd.record(Bucket::Copy, iend - now);
                        threads.advance(t, iend, true);
                    }
                }
            }
        }
    };

    for obj in objs {
        let size = heap.obj_size_words(obj);

        let t = threads.least_loaded();
        let now = threads.clock(t);
        let (cpu, mem) = sys.host_stream_op(t % cores, now, sys.costs.walk_per_obj, &[(obj, AccessKind::Read)]);
        bd.record(Bucket::Other, cpu - now);
        threads.advance(t, cpu, true);
        drain = drain.max(mem);

        // Destination calculation: the Fig. 3(b) Bitmap Count before each
        // Copy (incremental here, since the walk is monotonic).
        let (new, span) = plan.new_addr_cached(heap, &mut caches[t], obj);
        debug_assert!(new <= obj, "compaction must move objects downward");
        charge_bitmap_query(sys, heap, threads, bd, t, cores, span);

        if new != obj {
            st.moved_bytes += size * 8;
        }
        match &mut run {
            Some((src, dst, words)) if src.add_words(*words) == obj && dst.add_words(*words) == new => {
                *words += size;
            }
            _ => {
                flush_run(sys, heap, threads, bd, &mut run);
                run = Some((obj, new, size));
            }
        }
    }
    flush_run(sys, heap, threads, bd, &mut run);

    // Post-pass: headers and the block-offset table. (The run copy left
    // mark bits in the moved headers.)
    let mut at = heap.old().start();
    let packed_end = plan.dest_base().add_words(plan.total_live_words());
    while at < packed_end {
        let size = heap.obj_size_words(at);
        object::clear_mark(&mut heap.mem, at);
        heap.bot_update(at, size);
        at = at.add_words(size);
    }
    threads.advance_all_to(drain);
}

fn epilogue(
    sys: &mut System,
    heap: &mut JavaHeap,
    threads: &mut GcThreads,
    bd: &mut Breakdown,
    plan: &CompactPlan,
    cores: usize,
) {
    // New space bounds: everything packed into Old, young empty.
    let packed_end = plan.dest_base().add_words(plan.total_live_words());
    assert!(
        packed_end <= heap.old().end(),
        "compaction overflow: {} live bytes exceed the old generation — OutOfMemoryError",
        plan.total_live_words() * 8
    );
    heap.set_old_top(packed_end);
    heap.reset_young();

    // Clear both mark bitmaps and the card table (streamed host writes).
    let beg = heap.beg_map().map_range();
    let end_r = heap.end_map().map_range();
    let cards = heap.cards().table_range();
    {
        let bm = *heap.beg_map();
        bm.clear_all(&mut heap.mem);
        let em = *heap.end_map();
        em.clear_all(&mut heap.mem);
        {
            let ct = *heap.cards();
            ct.clear_all(&mut heap.mem);
        }
    }
    // The clears are streaming memsets: writes issue back-to-back and
    // overlap in the core's miss window.
    for range in [beg, end_r, cards] {
        let t = threads.least_loaded();
        let start = threads.clock(t);
        let end = sys.host_stream_clear(t % cores, start, range);
        bd.record(Bucket::Other, end - start);
        threads.advance(t, end, true);
    }
    // The bitmaps are empty again: reset the per-extent checksum folds.
    crate::integrity::note_bitmap_clear(sys);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_constant_matches_hotspot_shape() {
        // 512 words = 4 KB regions, jdk7 ParallelCompactData geometry.
        assert_eq!(REGION_WORDS * 8, 4096);
    }
}
