//! Heap-integrity layer: silent-corruption injection at the offload-output
//! sites, incremental detection, and the three-rung repair ladder.
//!
//! PR 2's fault tier models units that *stall* (drops, wedges, timeouts);
//! this module models units that *lie*: a mis-executing unit writes damaged
//! mark-bitmap words, forwarding pointers, card bytes, or copied payloads
//! straight into the memory stack, bypassing the host's verification paths
//! (the PIM-adoption hazard of Ghose et al.). Four pieces:
//!
//! 1. **Injection** — a seeded [`CorruptionInjector`] rolls each primitive
//!    output write and, on a hit, flips one bit of the freshly written
//!    data. A site only injects while its primitive actually offloads
//!    (host-software writes are trusted), so quarantining a unit stops the
//!    bleeding at that site.
//! 2. **Detection** — honest, redundancy-based checks that never peek at
//!    ground truth: per-extent XOR checksums over the mark-bitmap words
//!    (maintained incrementally as objects are marked; verified extent by
//!    extent at the end of the mark phase), a read-back of each installed
//!    forwarding word against the known copy target, a scan of the dirtied
//!    card block for bytes that are neither `CLEAN` nor `DIRTY`, and a
//!    fold comparison of source vs. destination payload words after each
//!    copy. The optional *shadow oracle* re-checks each primitive output
//!    immediately and exactly (for bitmaps: refolds the touched extents at
//!    every mark), so nothing survives to the next read — escaped count is
//!    zero by construction.
//! 3. **Repair** — the ladder: rung 1 re-executes the damaged primitive on
//!    the host and patches the extent (payload re-copy, forwarding-word
//!    rewrite, card re-dirty); rung 2 is a bounded re-mark — damaged
//!    bitmap extents are zeroed and rebuilt from the object headers, whose
//!    mark state the host wrote and is trusted; rung 3 quarantines the
//!    unit (the existing watchdog kill + offload-mask clear) and counts
//!    the extent once a site's strike count crosses the threshold.
//! 4. **Accounting** — every outcome lands in
//!    [`RecoverySummary`](crate::breakdown::RecoverySummary) and the
//!    telemetry journal (`Corruption`/`Repair` events).
//!
//! Detection charges **zero simulated time** — only repairs advance the
//! calling thread's clock, through the public `System` repair paths. With
//! the layer disabled every hook is one `Option` branch; with the layer
//! enabled at zero rates no stream is ever drawn from and no repair runs,
//! so timing stays bit-identical to a run without the layer.

use crate::system::System;
use charon_core::packet::PrimType;
use charon_heap::addr::{VAddr, WORD_BYTES};
use charon_heap::cardtable::{CLEAN, DIRTY};
use charon_heap::heap::JavaHeap;
use charon_heap::markbitmap::MarkBitmap;
use charon_heap::object::{self, MarkState, AGE_SHIFT, FWD_SHIFT, STATE_FORWARDED, STATE_MASK};
use charon_sim::cache::AccessKind;
use charon_sim::faults::{CorruptionInjector, CorruptionRates, CorruptionSite};
use charon_sim::telemetry::Event;
use charon_sim::time::Ps;

/// Map words per checksum extent: 64 × 8-byte map words = 4096 covered
/// heap words = 32 KiB of heap per extent — the blast radius rung 2
/// rebuilds when bitmap damage is unlocalized.
pub const EXTENT_MAP_WORDS: u64 = 64;

/// What the integrity layer does beyond injecting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntegrityConfig {
    /// Maintain extent checksums and run the read-back/scan detectors.
    /// Off = injection only (measures what *escapes* a bare heap).
    pub checksums: bool,
    /// Re-check every primitive output immediately and exactly: bitmap
    /// extents refold at each mark instead of at end of phase, and the
    /// forwarding read-back compares the whole word (age bits included).
    pub shadow_oracle: bool,
    /// Detected corruptions at one site before rung 3 quarantines its
    /// unit.
    pub quarantine_threshold: u32,
}

impl Default for IntegrityConfig {
    fn default() -> IntegrityConfig {
        IntegrityConfig { checksums: true, shadow_oracle: false, quarantine_threshold: 3 }
    }
}

/// The unit class whose mis-execution each corruption site models.
fn site_prim(site: CorruptionSite) -> PrimType {
    match site {
        CorruptionSite::BitmapWord => PrimType::ScanPush,
        CorruptionSite::ForwardPointer | CorruptionSite::CopyPayload => PrimType::Copy,
        CorruptionSite::CardByte => PrimType::Search,
    }
}

/// Bitmap geometry snapshot, captured lazily from the heap on first use.
#[derive(Debug, Clone, Copy)]
struct Geometry {
    beg: MarkBitmap,
    end: MarkBitmap,
    extents: usize,
}

impl Geometry {
    fn of(heap: &JavaHeap) -> Geometry {
        let beg = *heap.beg_map();
        let end = *heap.end_map();
        let words = beg.map_range().bytes() / WORD_BYTES;
        Geometry { beg, end, extents: words.div_ceil(EXTENT_MAP_WORDS) as usize }
    }

    /// The extent holding map word `waddr` of `map`.
    fn extent_of(map: &MarkBitmap, waddr: VAddr) -> usize {
        (waddr.words_since(map.map_range().start) / EXTENT_MAP_WORDS) as usize
    }

    /// XOR-fold of extent `ext`'s map words.
    fn fold(&self, mem: &charon_heap::mem::HeapMemory, map: &MarkBitmap, ext: usize) -> u64 {
        let words = map.map_range().bytes() / WORD_BYTES;
        let lo = ext as u64 * EXTENT_MAP_WORDS;
        let hi = (lo + EXTENT_MAP_WORDS).min(words);
        let mut f = 0u64;
        for w in lo..hi {
            f ^= mem.read_word(map.map_range().start.add_words(w));
        }
        f
    }
}

/// Mutable integrity state hung off [`System`].
#[derive(Debug, Clone)]
pub struct IntegrityState {
    /// The layer's configuration.
    pub config: IntegrityConfig,
    injector: CorruptionInjector,
    geom: Option<Geometry>,
    /// Running XOR-fold per extent of the begin map, maintained at every
    /// mark; ditto `end_sums` for the end map.
    beg_sums: Vec<u64>,
    end_sums: Vec<u64>,
    /// Bitmap injections already classified (detected or benign) by a
    /// verify pass; the delta to `injector.injected(BitmapWord)` is what
    /// the next pass accounts for.
    bitmap_accounted: u64,
    /// Detected corruptions per site, indexed by [`CorruptionSite::index`].
    strikes: [u32; 4],
    quarantined: [bool; 4],
}

impl IntegrityState {
    /// Builds the layer. Streams replay bit-for-bit for a `(seed, rates)`
    /// pair and are disjoint from the PR 2 fault streams under the same
    /// seed.
    pub fn new(seed: u64, rates: CorruptionRates, config: IntegrityConfig) -> IntegrityState {
        IntegrityState {
            config,
            injector: CorruptionInjector::new(seed, rates),
            geom: None,
            beg_sums: Vec::new(),
            end_sums: Vec::new(),
            bitmap_accounted: 0,
            strikes: [0; 4],
            quarantined: [false; 4],
        }
    }

    /// Injections per site so far, indexed by [`CorruptionSite::index`].
    pub fn injected(&self) -> [u64; 4] {
        let mut out = [0; 4];
        for s in CorruptionSite::ALL {
            out[s.index()] = self.injector.injected(s);
        }
        out
    }

    fn ensure_geometry(&mut self, heap: &JavaHeap) {
        if self.geom.is_none() {
            let g = Geometry::of(heap);
            self.beg_sums = vec![0; g.extents];
            self.end_sums = vec![0; g.extents];
            self.geom = Some(g);
        }
    }

    fn detectors_on(&self) -> bool {
        self.config.checksums || self.config.shadow_oracle
    }

    /// One detected corruption at `site`; fires rung 3 at the threshold.
    fn strike(&mut self, sys: &mut System, site: CorruptionSite, now: Ps, hits: u32) {
        let i = site.index();
        self.strikes[i] += hits;
        if self.strikes[i] >= self.config.quarantine_threshold && !self.quarantined[i] {
            self.quarantined[i] = true;
            let prim = site_prim(site);
            let pi = prim.encode() as usize;
            if sys.offload.get(prim) {
                sys.offload.set(prim, false);
                sys.recovery.degraded[pi] = true;
            }
            if let Some(dev) = &mut sys.device {
                dev.kill_unit(prim);
            }
            sys.recovery.repair_rungs[2] += 1;
            sys.recovery.quarantined_extents += 1;
            sys.telemetry
                .record(|| Event::Repair { site: site.name(), rung: 3, addr: 0, at: now });
        }
    }

    /// Re-arms `prim`'s sites after a unit probe re-enable: strikes reset
    /// so the site can earn a fresh quarantine.
    pub fn rearm_prim(&mut self, prim: PrimType) {
        for site in CorruptionSite::ALL {
            if site_prim(site) == prim {
                self.strikes[site.index()] = 0;
                self.quarantined[site.index()] = false;
            }
        }
    }

    // ----- copy payload ---------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn on_copy(
        &mut self,
        sys: &mut System,
        heap: &mut JavaHeap,
        core: usize,
        now: Ps,
        src: VAddr,
        dst: VAddr,
        words: u64,
    ) -> Ps {
        if words < 2 || !sys.prim_offloads(PrimType::Copy) {
            return now;
        }
        let Some(draw) = self.injector.roll(CorruptionSite::CopyPayload) else {
            return now;
        };
        // Damage one payload word (word 0 is the mark word, rewritten by
        // the forwarding install on the source and the age reset on the
        // destination — it is excluded from both injection and the fold).
        let wi = 1 + (draw >> 6) % (words - 1);
        let victim = dst.add_words(wi);
        heap.mem.write_word(victim, heap.mem.read_word(victim) ^ (1u64 << (draw % 64)));
        sys.recovery.corrupt_injected[CorruptionSite::CopyPayload.index()] += 1;
        if !self.detectors_on() {
            return now; // injection-only mode: the flip escapes
        }
        let mut fold = 0u64;
        for w in 1..words {
            fold ^= heap.mem.read_word(src.add_words(w)) ^ heap.mem.read_word(dst.add_words(w));
        }
        debug_assert_ne!(fold, 0, "single-bit payload flip must unbalance the fold");
        sys.recovery.corrupt_detected[CorruptionSite::CopyPayload.index()] += 1;
        sys.telemetry.record(|| Event::Corruption {
            site: CorruptionSite::CopyPayload.name(),
            addr: victim.0,
            at: now,
            detected: true,
        });
        // Rung 1: re-execute the copy on the host and patch the extent.
        heap.mem.copy_words(src.add_words(1), dst.add_words(1), words - 1);
        let end = sys.repair_copy(core, now, src.add_words(1), dst.add_words(1), (words - 1) * WORD_BYTES);
        sys.recovery.corrupt_repaired[CorruptionSite::CopyPayload.index()] += 1;
        sys.recovery.repair_rungs[0] += 1;
        sys.telemetry.record(|| Event::Repair {
            site: CorruptionSite::CopyPayload.name(),
            rung: 1,
            addr: victim.0,
            at: end,
        });
        self.strike(sys, CorruptionSite::CopyPayload, end, 1);
        end
    }

    // ----- forwarding word ------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn on_forward(
        &mut self,
        sys: &mut System,
        heap: &mut JavaHeap,
        core: usize,
        now: Ps,
        src: VAddr,
        dst: VAddr,
        age: u8,
    ) -> Ps {
        if !sys.prim_offloads(PrimType::Copy) {
            return now;
        }
        let Some(draw) = self.injector.roll(CorruptionSite::ForwardPointer) else {
            return now;
        };
        heap.mem.write_word(src, heap.mem.read_word(src) ^ (1u64 << (draw % 64)));
        sys.recovery.corrupt_injected[CorruptionSite::ForwardPointer.index()] += 1;
        if !self.detectors_on() {
            return now;
        }
        // Read-back: the word must decode as "forwarded to dst". The copy
        // target is in hand at the install site, so this is a legitimate
        // write-verify, not ground-truth peeking.
        let w = heap.mem.read_word(src);
        let bad = if self.config.shadow_oracle {
            w != (u64::from(age) << AGE_SHIFT) | ((dst.0 / WORD_BYTES) << FWD_SHIFT) | STATE_FORWARDED
        } else {
            (w & STATE_MASK) != STATE_FORWARDED || (w >> FWD_SHIFT) != dst.0 / WORD_BYTES
        };
        if !bad {
            // The flip landed in the age bits, which a forwarded (evacuated)
            // header never exposes again — provably dead, counted benign.
            sys.recovery.corrupt_benign[CorruptionSite::ForwardPointer.index()] += 1;
            sys.telemetry.record(|| Event::Corruption {
                site: CorruptionSite::ForwardPointer.name(),
                addr: src.0,
                at: now,
                detected: false,
            });
            return now;
        }
        sys.recovery.corrupt_detected[CorruptionSite::ForwardPointer.index()] += 1;
        sys.telemetry.record(|| Event::Corruption {
            site: CorruptionSite::ForwardPointer.name(),
            addr: src.0,
            at: now,
            detected: true,
        });
        // Rung 1: reinstall the forwarding word (and, under the oracle, the
        // exact pre-copy age).
        object::forward_to(&mut heap.mem, src, dst);
        if self.config.shadow_oracle {
            object::set_age(&mut heap.mem, src, age);
        }
        let end = sys.host_op(core, now, 2, &[(src, AccessKind::Write)]);
        sys.recovery.corrupt_repaired[CorruptionSite::ForwardPointer.index()] += 1;
        sys.recovery.repair_rungs[0] += 1;
        sys.telemetry.record(|| Event::Repair {
            site: CorruptionSite::ForwardPointer.name(),
            rung: 1,
            addr: src.0,
            at: end,
        });
        self.strike(sys, CorruptionSite::ForwardPointer, end, 1);
        end
    }

    // ----- card byte ------------------------------------------------------

    fn on_card(&mut self, sys: &mut System, heap: &mut JavaHeap, core: usize, now: Ps, card: VAddr) -> Ps {
        if !sys.prim_offloads(PrimType::Search) {
            return now;
        }
        let Some(draw) = self.injector.roll(CorruptionSite::CardByte) else {
            return now;
        };
        // Damage one bit somewhere in the 8-byte-aligned block holding the
        // card — the granule the Search unit writes back.
        let table = heap.cards().table_range();
        let block = VAddr(card.0 & !(WORD_BYTES - 1));
        let mut victim = block.add_bytes((draw >> 3) % 8);
        if !table.contains(victim) {
            victim = card;
        }
        heap.mem.write_u8(victim, heap.mem.read_u8(victim) ^ (1u8 << (draw % 8)));
        sys.recovery.corrupt_injected[CorruptionSite::CardByte.index()] += 1;
        if !self.detectors_on() {
            return now;
        }
        // Every valid card byte is CLEAN or DIRTY; a single-bit flip of
        // either can never produce the other, so a block scan catches every
        // flip.
        let mut bad = Vec::new();
        for i in 0..8u64 {
            let a = block.add_bytes(i);
            if table.contains(a) {
                let b = heap.mem.read_u8(a);
                if b != CLEAN && b != DIRTY {
                    bad.push(a);
                }
            }
        }
        debug_assert!(!bad.is_empty(), "card flip must leave an invalid byte");
        sys.recovery.corrupt_detected[CorruptionSite::CardByte.index()] += 1;
        sys.telemetry.record(|| Event::Corruption {
            site: CorruptionSite::CardByte.name(),
            addr: victim.0,
            at: now,
            detected: true,
        });
        // Rung 1: conservatively re-dirty the damaged bytes (a spurious
        // DIRTY only costs a wasted scan; a lost DIRTY would lose refs).
        for &a in &bad {
            heap.mem.write_u8(a, DIRTY);
        }
        let end = sys.host_op(core, now, 4, &[(block, AccessKind::Read), (victim, AccessKind::Write)]);
        sys.recovery.corrupt_repaired[CorruptionSite::CardByte.index()] += 1;
        sys.recovery.repair_rungs[0] += 1;
        sys.telemetry.record(|| Event::Repair {
            site: CorruptionSite::CardByte.name(),
            rung: 1,
            addr: victim.0,
            at: end,
        });
        self.strike(sys, CorruptionSite::CardByte, end, 1);
        end
    }

    // ----- mark-bitmap words ----------------------------------------------

    fn on_mark(
        &mut self,
        sys: &mut System,
        heap: &mut JavaHeap,
        core: usize,
        now: Ps,
        obj: VAddr,
        size_words: u64,
    ) -> Ps {
        self.ensure_geometry(heap);
        let g = self.geom.expect("geometry ensured");
        let last = obj.add_words(size_words - 1);
        let beg_word = g.beg.map_word_addr(obj);
        let end_word = g.end.map_word_addr(last);
        if self.config.checksums || self.config.shadow_oracle {
            // Incremental fold update: `mark_object` set exactly one
            // previously clear bit in each map (distinct objects own
            // distinct begin/end bits), so the extent fold moves by the
            // single-bit mask.
            let beg_bit = obj.words_since(g.beg.covered().start) % 64;
            let end_bit = last.words_since(g.end.covered().start) % 64;
            self.beg_sums[Geometry::extent_of(&g.beg, beg_word)] ^= 1u64 << beg_bit;
            self.end_sums[Geometry::extent_of(&g.end, end_word)] ^= 1u64 << end_bit;
        }
        if !sys.prim_offloads(PrimType::ScanPush) {
            return now;
        }
        let Some(draw) = self.injector.roll(CorruptionSite::BitmapWord) else {
            return now;
        };
        // Flip one bit of one of the two map words this mark touched,
        // without updating the running fold — the corruption signal the
        // verify pass hunts.
        let victim = if draw & (1 << 12) == 0 { beg_word } else { end_word };
        heap.mem.write_word(victim, heap.mem.read_word(victim) ^ (1u64 << (draw % 64)));
        sys.recovery.corrupt_injected[CorruptionSite::BitmapWord.index()] += 1;
        if self.config.shadow_oracle {
            let exts = [Geometry::extent_of(&g.beg, beg_word), Geometry::extent_of(&g.end, end_word)];
            return self.verify_extents(sys, heap, core, now, Some(&exts));
        }
        now
    }

    /// Verifies extent folds (all of them, or just `only`), rebuilds any
    /// damaged extents from the object headers (rung 2), and classifies the
    /// pending bitmap injections. Returns the repair completion time.
    fn verify_extents(
        &mut self,
        sys: &mut System,
        heap: &mut JavaHeap,
        core: usize,
        now: Ps,
        only: Option<&[usize]>,
    ) -> Ps {
        let Some(g) = self.geom else { return now };
        if !self.detectors_on() {
            return now;
        }
        let mut beg_damaged = vec![false; g.extents];
        let mut end_damaged = vec![false; g.extents];
        let mut any = false;
        let mut first_bad = 0u64;
        let check =
            |ext: usize, sums: &[u64], map: &MarkBitmap, damaged: &mut [bool], any: &mut bool, first: &mut u64| {
                if g.fold(&heap.mem, map, ext) != sums[ext] && !damaged[ext] {
                    damaged[ext] = true;
                    if !*any {
                        *first = map.map_range().start.add_words(ext as u64 * EXTENT_MAP_WORDS).0;
                    }
                    *any = true;
                }
            };
        match only {
            Some(exts) => {
                for &e in exts {
                    check(e, &self.beg_sums, &g.beg, &mut beg_damaged, &mut any, &mut first_bad);
                    check(e, &self.end_sums, &g.end, &mut end_damaged, &mut any, &mut first_bad);
                }
            }
            None => {
                for e in 0..g.extents {
                    check(e, &self.beg_sums, &g.beg, &mut beg_damaged, &mut any, &mut first_bad);
                    check(e, &self.end_sums, &g.end, &mut end_damaged, &mut any, &mut first_bad);
                }
            }
        }
        let pending = self.injector.injected(CorruptionSite::BitmapWord) - self.bitmap_accounted;
        if !any {
            if pending > 0 && only.is_none() {
                // Flips that cancelled (same bit twice) restored the words
                // bit-for-bit: provably benign. Only a full sweep can
                // conclude this.
                self.bitmap_accounted += pending;
                sys.recovery.corrupt_benign[CorruptionSite::BitmapWord.index()] += pending;
                for _ in 0..pending {
                    sys.telemetry.record(|| Event::Corruption {
                        site: CorruptionSite::BitmapWord.name(),
                        addr: 0,
                        at: now,
                        detected: false,
                    });
                }
            }
            return now;
        }
        self.bitmap_accounted += pending;
        sys.recovery.corrupt_detected[CorruptionSite::BitmapWord.index()] += pending;
        sys.telemetry.record(|| Event::Corruption {
            site: CorruptionSite::BitmapWord.name(),
            addr: first_bad,
            at: now,
            detected: true,
        });
        // Rung 2: bounded re-mark. Zero the damaged extents, then walk the
        // used regions re-setting bits for every header the host marked —
        // the header mark state is host-written and trusted.
        let mut accesses = Vec::new();
        let mut zero = |map: &MarkBitmap, damaged: &[bool], accesses: &mut Vec<(VAddr, AccessKind)>| {
            let words = map.map_range().bytes() / WORD_BYTES;
            for (e, _) in damaged.iter().enumerate().filter(|(_, d)| **d) {
                let lo = e as u64 * EXTENT_MAP_WORDS;
                let hi = (lo + EXTENT_MAP_WORDS).min(words);
                heap.mem.fill_words(map.map_range().start.add_words(lo), hi - lo, 0);
                for w in lo..hi {
                    accesses.push((map.map_range().start.add_words(w), AccessKind::Write));
                }
            }
        };
        zero(&g.beg, &beg_damaged, &mut accesses);
        zero(&g.end, &end_damaged, &mut accesses);
        let mut walked = 0u64;
        let mut ranges: Vec<_> = [heap.old().used_region(), heap.eden().used_region(), heap.from_space().used_region()]
            .into_iter()
            .filter(|r| !r.is_empty())
            .collect();
        ranges.sort_by_key(|r| r.start);
        for r in ranges {
            let objs: Vec<(VAddr, u64)> = heap.walk_objects_sized(r.start, r.end).collect();
            for (o, size) in objs {
                walked += 1;
                if object::mark_state(&heap.mem, o) != MarkState::Marked {
                    continue;
                }
                let o_last = o.add_words(size - 1);
                if beg_damaged[Geometry::extent_of(&g.beg, g.beg.map_word_addr(o))] {
                    g.beg.set(&mut heap.mem, o);
                }
                if end_damaged[Geometry::extent_of(&g.end, g.end.map_word_addr(o_last))] {
                    g.end.set(&mut heap.mem, o_last);
                }
            }
        }
        let mut rebuilt = 0u64;
        for e in 0..g.extents {
            if beg_damaged[e] {
                self.beg_sums[e] = g.fold(&heap.mem, &g.beg, e);
                rebuilt += 1;
            }
            if end_damaged[e] {
                self.end_sums[e] = g.fold(&heap.mem, &g.end, e);
                rebuilt += 1;
            }
        }
        let end = sys.host_op(core, now, walked * 2 + rebuilt * EXTENT_MAP_WORDS, &accesses);
        sys.recovery.corrupt_repaired[CorruptionSite::BitmapWord.index()] += pending;
        sys.recovery.repair_rungs[1] += rebuilt;
        sys.telemetry.record(|| Event::Repair {
            site: CorruptionSite::BitmapWord.name(),
            rung: 2,
            addr: first_bad,
            at: end,
        });
        self.strike(sys, CorruptionSite::BitmapWord, end, rebuilt as u32);
        end
    }

    /// The bitmaps were bulk-cleared (major epilogue): reset the folds.
    /// All pending injections were classified by the end-of-mark verify,
    /// so nothing is lost with the bits.
    fn on_clear(&mut self) {
        debug_assert_eq!(
            self.injector.injected(CorruptionSite::BitmapWord),
            self.bitmap_accounted,
            "bitmap injections must be classified before the maps are cleared"
        );
        self.beg_sums.iter_mut().for_each(|s| *s = 0);
        self.end_sums.iter_mut().for_each(|s| *s = 0);
    }
}

// ----- hook entry points (one Option branch when the layer is off) --------

/// After the functional copy of `words` words `src` → `dst` (minor-GC
/// evacuation or major-GC compaction). `src`'s mark word may already hold
/// the forwarding install; word 0 is excluded from the check. Returns the
/// thread time including any rung-1 repair.
pub fn after_copy(
    sys: &mut System,
    heap: &mut JavaHeap,
    core: usize,
    now: Ps,
    src: VAddr,
    dst: VAddr,
    words: u64,
) -> Ps {
    let Some(mut st) = sys.integrity.take() else { return now };
    let end = st.on_copy(sys, heap, core, now, src, dst, words);
    sys.integrity = Some(st);
    end
}

/// After `forward_to(src, dst)` installed the forwarding word; `age` is the
/// object's pre-copy tenuring age (for the oracle's exact compare). Must
/// run before any other thread can read `src`'s mark word — a flipped
/// state field would otherwise trip the decoder.
pub fn after_forward(
    sys: &mut System,
    heap: &mut JavaHeap,
    core: usize,
    now: Ps,
    src: VAddr,
    dst: VAddr,
    age: u8,
) -> Ps {
    let Some(mut st) = sys.integrity.take() else { return now };
    let end = st.on_forward(sys, heap, core, now, src, dst, age);
    sys.integrity = Some(st);
    end
}

/// After a card byte at `card` was dirtied on an offload-written path.
pub fn after_card_dirty(sys: &mut System, heap: &mut JavaHeap, core: usize, now: Ps, card: VAddr) -> Ps {
    let Some(mut st) = sys.integrity.take() else { return now };
    let end = st.on_card(sys, heap, core, now, card);
    sys.integrity = Some(st);
    end
}

/// After `mark_object` set `obj`'s begin/end bits: maintains the extent
/// folds, rolls the bitmap corruption site, and (under the oracle)
/// verifies the touched extents immediately.
pub fn after_mark(sys: &mut System, heap: &mut JavaHeap, core: usize, now: Ps, obj: VAddr, size_words: u64) -> Ps {
    let Some(mut st) = sys.integrity.take() else { return now };
    let end = st.on_mark(sys, heap, core, now, obj, size_words);
    sys.integrity = Some(st);
    end
}

/// End-of-mark sweep: verifies every extent fold and repairs damage before
/// the summary phase reads the bitmaps. Call after reference processing,
/// before `summary_phase`.
pub fn verify_marks(sys: &mut System, heap: &mut JavaHeap, core: usize, now: Ps) -> Ps {
    let Some(mut st) = sys.integrity.take() else { return now };
    let end = st.verify_extents(sys, heap, core, now, None);
    sys.integrity = Some(st);
    end
}

/// The major epilogue cleared both mark bitmaps: reset the running folds.
pub fn note_bitmap_clear(sys: &mut System) {
    if let Some(st) = &mut sys.integrity {
        st.on_clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charon_heap::heap::HeapConfig;
    use charon_heap::klass::KlassKind;
    use charon_heap::markbitmap;

    fn setup() -> (System, JavaHeap, VAddr, u64) {
        let mut sys = System::charon();
        let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(4 << 20));
        let point = heap.klasses_mut().register("Point", KlassKind::Instance, 4, vec![0, 1]);
        let obj = heap.alloc_eden(point, 0).expect("fits");
        let size = heap.obj_size_words(obj);
        sys.enable_integrity(11, CorruptionRates::uniform(1.0), IntegrityConfig::default());
        (sys, heap, obj, size)
    }

    #[test]
    fn disabled_hooks_charge_nothing() {
        let mut sys = System::charon();
        let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(4 << 20));
        let t = Ps::from_us(3.0);
        assert_eq!(after_copy(&mut sys, &mut heap, 0, t, VAddr(0), VAddr(0), 8), t);
        assert_eq!(verify_marks(&mut sys, &mut heap, 0, t), t);
        assert!(sys.recovery.is_empty());
    }

    #[test]
    fn zero_rates_inject_nothing_and_charge_nothing() {
        let (mut sys, mut heap, obj, size) = setup();
        sys.enable_integrity(11, CorruptionRates::zero(), IntegrityConfig::default());
        let t = Ps::from_us(3.0);
        let (beg, end_map) = (*heap.beg_map(), *heap.end_map());
        markbitmap::mark_object(&mut heap.mem, &beg, &end_map, obj, size);
        object::set_marked(&mut heap.mem, obj);
        assert_eq!(after_mark(&mut sys, &mut heap, 0, t, obj, size), t);
        assert_eq!(verify_marks(&mut sys, &mut heap, 0, t), t);
        assert!(!sys.recovery.has_corruption());
    }

    #[test]
    fn payload_corruption_detected_and_repaired() {
        let (mut sys, mut heap, obj, size) = setup();
        let dst = heap.alloc_to(size).expect("fits");
        for w in 0..size {
            heap.mem.write_word(dst.add_words(w), heap.mem.read_word(obj.add_words(w)));
        }
        let t = Ps::from_us(1.0);
        let end = after_copy(&mut sys, &mut heap, 0, t, obj, dst, size);
        assert!(end > t, "rung-1 repair must charge host time");
        let pi = CorruptionSite::CopyPayload.index();
        assert_eq!(sys.recovery.corrupt_injected[pi], 1);
        assert_eq!(sys.recovery.corrupt_detected[pi], 1);
        assert_eq!(sys.recovery.corrupt_repaired[pi], 1);
        assert_eq!(sys.recovery.repair_rungs[0], 1);
        for w in 1..size {
            assert_eq!(
                heap.mem.read_word(dst.add_words(w)),
                heap.mem.read_word(obj.add_words(w)),
                "payload word {w} repaired"
            );
        }
        assert_eq!(sys.recovery.escaped(), 0);
    }

    #[test]
    fn forward_corruption_detected_or_provably_benign() {
        for seed in 0..32u64 {
            let (mut sys, mut heap, obj, _) = setup();
            sys.enable_integrity(seed, CorruptionRates::uniform(1.0), IntegrityConfig::default());
            let dst = VAddr(heap.to_space().start().0);
            object::set_age(&mut heap.mem, obj, 3);
            object::forward_to(&mut heap.mem, obj, dst);
            after_forward(&mut sys, &mut heap, 0, Ps::ZERO, obj, dst, 3);
            // Whatever the flip hit, the decode path must survive and point
            // at dst again.
            assert_eq!(object::mark_state(&heap.mem, obj), MarkState::Forwarded, "seed {seed}");
            assert_eq!(object::forwarding(&heap.mem, obj), dst, "seed {seed}");
            assert_eq!(sys.recovery.escaped(), 0, "seed {seed}");
        }
    }

    #[test]
    fn card_corruption_repairs_to_valid_bytes() {
        let (mut sys, mut heap, _, _) = setup();
        let slot = heap.old().start();
        let cards = *heap.cards();
        cards.dirty(&mut heap.mem, slot);
        let card = cards.card_addr(slot);
        let end = after_card_dirty(&mut sys, &mut heap, 0, Ps::ZERO, card);
        assert!(end > Ps::ZERO);
        let block = VAddr(card.0 & !7);
        for i in 0..8 {
            let a = block.add_bytes(i);
            if cards.table_range().contains(a) {
                let b = heap.mem.read_u8(a);
                assert!(b == CLEAN || b == DIRTY, "byte {i} left invalid: {b:#x}");
            }
        }
        assert!(cards.is_dirty(&heap.mem, slot), "the dirtied card must stay dirty");
        assert_eq!(sys.recovery.escaped(), 0);
    }

    #[test]
    fn bitmap_corruption_found_at_verify_and_rebuilt() {
        let (mut sys, mut heap, obj, size) = setup();
        let (beg, end_map) = (*heap.beg_map(), *heap.end_map());
        markbitmap::mark_object(&mut heap.mem, &beg, &end_map, obj, size);
        object::set_marked(&mut heap.mem, obj);
        after_mark(&mut sys, &mut heap, 0, Ps::ZERO, obj, size);
        let bi = CorruptionSite::BitmapWord.index();
        assert_eq!(sys.recovery.corrupt_injected[bi], 1);
        assert_eq!(sys.recovery.corrupt_detected[bi], 0, "deferred until verify");
        let t = verify_marks(&mut sys, &mut heap, 0, Ps::ZERO);
        assert!(t > Ps::ZERO, "rung-2 rebuild charges time");
        assert_eq!(sys.recovery.corrupt_detected[bi], 1);
        assert_eq!(sys.recovery.corrupt_repaired[bi], 1);
        assert!(sys.recovery.repair_rungs[1] >= 1);
        assert!(beg.get(&heap.mem, obj), "begin bit restored");
        assert!(end_map.get(&heap.mem, obj.add_words(size - 1)), "end bit restored");
        // The rest of both maps is clean again: counting over eden sees
        // exactly this object.
        assert_eq!(beg.count_range(&heap.mem, heap.eden().start(), heap.eden().top()), 1);
        assert_eq!(sys.recovery.escaped(), 0);
        // A second verify finds nothing new and charges nothing.
        assert_eq!(verify_marks(&mut sys, &mut heap, 0, Ps::ZERO), Ps::ZERO);
    }

    #[test]
    fn oracle_verifies_marks_immediately() {
        let (mut sys, mut heap, obj, size) = setup();
        let cfg = IntegrityConfig { shadow_oracle: true, ..IntegrityConfig::default() };
        sys.enable_integrity(11, CorruptionRates::uniform(1.0), cfg);
        let (beg, end_map) = (*heap.beg_map(), *heap.end_map());
        markbitmap::mark_object(&mut heap.mem, &beg, &end_map, obj, size);
        object::set_marked(&mut heap.mem, obj);
        let t = after_mark(&mut sys, &mut heap, 0, Ps::ZERO, obj, size);
        assert!(t > Ps::ZERO, "oracle repairs at the mark itself");
        let bi = CorruptionSite::BitmapWord.index();
        assert_eq!(sys.recovery.corrupt_detected[bi], 1);
        assert_eq!(sys.recovery.escaped(), 0);
    }

    #[test]
    fn repeated_detections_quarantine_the_unit() {
        let (mut sys, mut heap, obj, size) = setup();
        let dst = heap.alloc_to(size * 4).expect("fits");
        for round in 0..3 {
            let d = dst.add_words(round * size);
            for w in 0..size {
                heap.mem.write_word(d.add_words(w), heap.mem.read_word(obj.add_words(w)));
            }
            after_copy(&mut sys, &mut heap, 0, Ps::ZERO, obj, d, size);
        }
        assert!(!sys.offload.get(PrimType::Copy), "rung 3 clears the Copy offload bit");
        assert!(sys.offload.get(PrimType::Search), "other units untouched");
        assert_eq!(sys.recovery.repair_rungs[2], 1);
        assert_eq!(sys.recovery.quarantined_extents, 1);
        assert!(sys.unit_health()[PrimType::Copy.encode() as usize], "watchdog records the kill");
        // The quarantined site stops injecting: further copies are host
        // writes, which the corruption model trusts.
        let before = sys.recovery.corrupt_injected[CorruptionSite::CopyPayload.index()];
        after_copy(&mut sys, &mut heap, 0, Ps::ZERO, obj, dst, size);
        assert_eq!(sys.recovery.corrupt_injected[CorruptionSite::CopyPayload.index()], before);
    }
}
