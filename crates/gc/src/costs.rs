//! Calibrated instruction costs for host-side GC code.
//!
//! The paper's evaluation executes the real HotSpot binary under zsim; we
//! replace per-instruction simulation with per-operation instruction
//! budgets, chosen from inspection of the corresponding HotSpot 7 code
//! paths and calibrated so that (a) host GC IPC lands below 0.5 as §1
//! reports, and (b) the per-primitive speedups of Fig. 14 fall in the
//! paper's bands. All budgets are in dynamic instructions and are turned
//! into time via the host's effective IPC (`charon-sim::host`).

/// Instruction budgets for the host paths.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Pop an entry off the object stack and dispatch (`ObjArrayTask` pop,
    /// null/forward checks).
    pub pop: u64,
    /// Push an entry (bounds check, store, top update).
    pub push: u64,
    /// Per copied 64 B line in the software copy loop (unrolled
    /// load/store + induction).
    pub copy_per_line: u64,
    /// Per 8 B card-table block compared against clean in the software
    /// Search loop (Fig. 7, lines 5–7).
    pub search_per_block: u64,
    /// Per 8 B map word processed by the software Bitmap Count. Fig. 8's
    /// loop advances bit by bit — roughly 3 dynamic instructions per bit
    /// (load/shift/test/branch amortized), i.e. 192 per 64-bit map word.
    /// This is what the paper calls "very slow" and what the subtract +
    /// popcount unit replaces.
    pub bitmap_per_map_word: u64,
    /// Per reference examined in Scan&Push (field load, null check,
    /// forward test, conditional push / metadata update).
    pub scan_per_ref: u64,
    /// Per root slot examined.
    pub root_per_slot: u64,
    /// Per object header examined when walking a dirty card.
    pub card_walk_per_obj: u64,
    /// Fixed dispatch cost of invoking a primitive (call + setup), or of
    /// issuing an offload intrinsic on the host side.
    pub prim_dispatch: u64,
    /// Per-object bookkeeping during copy (forwarding install, size
    /// lookup, age update, destination allocation).
    pub copy_fixup: u64,
    /// Per live object visited in the MajorGC adjust/compact walks
    /// (bitmap iteration, region lookup).
    pub walk_per_obj: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            pop: 10,
            push: 6,
            copy_per_line: 6,
            search_per_block: 3,
            bitmap_per_map_word: 192,
            scan_per_ref: 10,
            root_per_slot: 8,
            card_walk_per_obj: 14,
            prim_dispatch: 30,
            copy_fixup: 40,
            walk_per_obj: 24,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        let c = CostModel::default();
        for v in [
            c.pop,
            c.push,
            c.copy_per_line,
            c.search_per_block,
            c.bitmap_per_map_word,
            c.scan_per_ref,
            c.root_per_slot,
            c.card_walk_per_obj,
            c.prim_dispatch,
            c.copy_fixup,
            c.walk_per_obj,
        ] {
            assert!(v > 0);
        }
    }
}
