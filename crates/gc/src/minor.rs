//! MinorGC — the ParallelScavenge young collection (Fig. 3a).
//!
//! Flow, exactly as §3.2 describes: push the root set; *Search* the card
//! table for old-to-young references and push those too; then drain the
//! object stack — *Pop object*, *Copy* the referent to the to-space or
//! promote it to Old, and *Scan&Push* the copy's reference fields. The
//! stack holds *slot addresses* (as HotSpot's promotion manager does), so
//! forwarding updates the referring field when a referent has already been
//! copied.
//!
//! Every functional step is paired with a timing charge into the Fig. 4
//! buckets through the backend-dispatching [`System`] primitives.

use crate::breakdown::{Breakdown, Bucket};
use crate::system::{Backend, System};
use crate::threads::GcThreads;
use charon_core::device::{ScanAction, ScanRef};
use charon_heap::addr::VAddr;
use charon_heap::heap::JavaHeap;
use charon_heap::object::{self, MarkState};
use charon_heap::objstack::ObjStack;
use charon_sim::cache::AccessKind;
use charon_sim::telemetry::Event;

/// Outcome counters of one MinorGC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinorStats {
    /// The tenuring threshold this scavenge used (adaptive policy).
    pub tenuring_threshold: u8,
    /// Bytes copied into the to-space.
    pub survived_bytes: u64,
    /// Bytes promoted into Old.
    pub promoted_bytes: u64,
    /// Live young objects moved.
    pub objects_copied: u64,
    /// Dirty cards found by *Search*.
    pub dirty_cards: u64,
    /// Peak object-stack depth.
    pub stack_max: usize,
    /// Root slots that seeded the scavenge.
    pub roots_pushed: u64,
    /// `java.lang.ref` referents cleared because only weak paths reached
    /// them.
    pub cleared_weak_refs: u64,
}

/// Whether a primitive charge should count the thread as blocked
/// (offloaded) rather than executing.
fn offloaded(sys: &System, hardware_iterable: bool) -> bool {
    match sys.backend {
        Backend::Host => false,
        Backend::Charon | Backend::CpuSideCharon => hardware_iterable,
        Backend::Ideal => true,
    }
}

/// Runs one MinorGC. `threads` carries the start time; the caller reads
/// the end time from the barrier it returns into the thread clocks.
/// `free` is the old generation's free store: promotion consults it for
/// a dead range before touching the bump frontier. Under PS it is empty
/// and every consult is a constant-time `None` — timing unchanged.
pub fn minor_gc(
    sys: &mut System,
    heap: &mut JavaHeap,
    threads: &mut GcThreads,
    free: &mut crate::freelist::FreeStore,
) -> (Breakdown, MinorStats) {
    let mut bd = Breakdown::new();
    let mut st = MinorStats::default();
    let cores = sys.host.cores();
    let seq = sys.collection_seq;
    let tenuring = sys.tenuring.unwrap_or(heap.config().tenuring_threshold);
    st.tenuring_threshold = tenuring;
    let mut stack = ObjStack::new(heap.layout().minor_stack);
    // `java.lang.ref` discovery: referent slots of InstanceRef holders are
    // not scavenged through; they are resolved after the drain.
    let mut discovered: Vec<VAddr> = Vec::new();

    // Prologue: bulk host-cache flush under offloading backends (§4.6).
    {
        let now = threads.clock(0);
        let end = sys.gc_prologue(now);
        bd.record(Bucket::Other, end - now);
        threads.advance(0, end, false);
        threads.barrier();
    }

    // Phase 1: root set → stack.
    let p0 = threads.max_clock();
    for idx in 0..heap.root_count() {
        let slot = heap.root_slot_addr(idx);
        let r = heap.read_ref(slot);
        let t = threads.least_loaded();
        let now = threads.clock(t);
        let end = sys.host_op(t % cores, now, sys.costs.root_per_slot, &[(slot, AccessKind::Read)]);
        bd.record(Bucket::Other, end - now);
        threads.advance(t, end, true);
        if !r.is_null() && heap.in_young(r) {
            let now = threads.clock(t);
            let s = stack.push(slot);
            let end = sys.host_op(t % cores, now, sys.costs.push, &[(s, AccessKind::Write)]);
            bd.record(Bucket::Push, end - now);
            threads.advance(t, end, true);
            st.roots_pushed += 1;
        }
    }

    let p1 = threads.max_clock();
    sys.telemetry.record(|| Event::Phase { seq, name: "roots", start: p0, end: p1 });

    // Phase 2: card-table Search for old-to-young references.
    let table = heap.cards().table_range();
    let old_top_card = if heap.old().used_bytes() == 0 {
        table.start
    } else {
        heap.cards().card_addr(VAddr(heap.old().top().0 - 1)).add_bytes(1)
    };
    let mut pos = table.start;
    while pos < old_top_card {
        let (hit, scanned) = heap.cards().search_dirty_block(&heap.mem, pos, old_top_card);
        let t = threads.least_loaded();
        let now = threads.clock(t);
        let end = sys.prim_search(t % cores, now, pos, scanned * 8);
        bd.record(Bucket::Search, end - now);
        threads.advance(t, end, !offloaded(sys, true));

        let Some(block) = hit else { break };
        for card in heap.cards().dirty_cards_in_block(&heap.mem, block) {
            st.dirty_cards += 1;
            scan_dirty_card(sys, heap, threads, &mut bd, &mut stack, &mut discovered, card, cores);
        }
        pos = block.add_bytes(8);
    }

    let p2 = threads.max_clock();
    sys.telemetry.record(|| Event::Phase { seq, name: "cards", start: p1, end: p2 });

    // Phase 3: drain the object stack.
    while let Some((slot, slot_addr)) = stack.pop() {
        let t = threads.least_loaded();
        let now = threads.clock(t);
        let end =
            sys.host_op(t % cores, now, sys.costs.pop, &[(slot_addr, AccessKind::Read), (slot, AccessKind::Read)]);
        bd.record(Bucket::Pop, end - now);
        threads.advance(t, end, true);

        process_slot(sys, heap, threads, &mut bd, &mut st, &mut stack, &mut discovered, free, slot, t, cores, tenuring);
    }
    st.stack_max = stack.max_depth();
    let p3 = threads.max_clock();
    sys.telemetry.record(|| Event::Phase { seq, name: "drain", start: p2, end: p3 });

    // Reference processing: a weak referent that no strong path copied is
    // dead — clear the Reference; one that was copied gets the new address.
    for slot in discovered {
        let v = heap.read_ref(slot);
        let t = threads.least_loaded();
        let now = threads.clock(t);
        let mut dirtied = false;
        if !v.is_null() && heap.in_young(v) {
            if object::mark_state(&heap.mem, v) == MarkState::Forwarded {
                let fwd = object::forwarding(&heap.mem, v);
                heap.write_ref(slot, fwd);
                if heap.in_old(slot) && heap.in_young(fwd) {
                    let ct = *heap.cards();
                    ct.dirty(&mut heap.mem, slot);
                    dirtied = true;
                }
            } else {
                heap.write_ref(slot, VAddr::NULL);
                st.cleared_weak_refs += 1;
            }
        }
        let end = sys.host_op(t % cores, now, 10, &[(slot, AccessKind::Write)]);
        bd.record(Bucket::Other, end - now);
        threads.advance(t, end, true);
        if dirtied {
            let now = threads.clock(t);
            let card = heap.cards().card_addr(slot);
            let end = crate::integrity::after_card_dirty(sys, heap, t % cores, now, card);
            if end > now {
                bd.record(Bucket::Other, end - now);
                threads.advance(t, end, true);
            }
        }
    }

    let p4 = threads.max_clock();
    sys.telemetry.record(|| Event::Phase { seq, name: "refs", start: p3, end: p4 });

    // Epilogue: swap survivor roles, reset Eden and the old from-space.
    {
        let t = threads.least_loaded();
        let now = threads.clock(t);
        heap.swap_survivors();
        let end = sys.host_op(t % cores, now, 200, &[]);
        bd.record(Bucket::Other, end - now);
        threads.advance(t, end, true);
    }

    // Adaptive tenuring (HotSpot's survivor-size policy): if the survivors
    // overflowed half a survivor space, age objects out sooner next time;
    // if they fit easily, keep them young longer.
    if heap.config().adaptive_tenuring {
        let half_survivor = heap.to_space().capacity_bytes() / 2;
        let max = heap.config().tenuring_threshold;
        let next =
            if st.survived_bytes > half_survivor { tenuring.saturating_sub(1).max(1) } else { (tenuring + 1).min(max) };
        sys.tenuring = Some(next);
    }
    threads.barrier();
    let p5 = threads.max_clock();
    sys.telemetry
        .record(|| Event::Phase { seq, name: "epilogue", start: p4, end: p5 });
    (bd, st)
}

/// Walks the objects overlapping one dirty card and pushes old slots that
/// reference young objects. The byte-scan was *Search*; this walk is the
/// host-side remainder of the card phase.
#[allow(clippy::too_many_arguments)]
fn scan_dirty_card(
    sys: &mut System,
    heap: &mut JavaHeap,
    threads: &mut GcThreads,
    bd: &mut Breakdown,
    stack: &mut ObjStack,
    discovered: &mut Vec<VAddr>,
    card: VAddr,
    cores: usize,
) {
    let region = heap.cards().card_region(card);
    let Some(first) = heap.first_obj_for_card(card) else {
        // No object recorded — the card covers unallocated space; clean it
        // (unless a concurrent mark cycle owns the dirty bits: the remark
        // must still see every card the widened barrier dirtied).
        if !heap.concmark_barrier() {
            heap.mem.write_u8(card, charon_heap::cardtable::CLEAN);
        }
        return;
    };
    let top = heap.old().top();
    let mut obj = first;
    while obj < region.end && obj < top {
        let t = threads.least_loaded();
        let now = threads.clock(t);
        let end = sys.host_op(t % cores, now, sys.costs.card_walk_per_obj, &[(obj, AccessKind::Read)]);
        bd.record(Bucket::Search, end - now);
        threads.advance(t, end, true);

        let size = heap.obj_size_words(obj);
        let weak_slot =
            (heap.obj_klass(obj).kind() == charon_heap::klass::KlassKind::InstanceRef).then(|| heap.ref_slots(obj)[0]);
        for slot in heap.ref_slots(obj) {
            if slot < region.start || slot >= region.end {
                continue; // only slots within this card
            }
            if weak_slot == Some(slot) {
                // Old Reference holder with a young referent: discovered,
                // not scavenged through.
                discovered.push(slot);
                continue;
            }
            let r = heap.read_ref(slot);
            if !r.is_null() && heap.in_young(r) {
                let t = threads.least_loaded();
                let now = threads.clock(t);
                let s = stack.push(slot);
                let end =
                    sys.host_op(t % cores, now, sys.costs.push, &[(slot, AccessKind::Read), (s, AccessKind::Write)]);
                bd.record(Bucket::Push, end - now);
                threads.advance(t, end, true);
            }
        }
        obj = obj.add_words(size);
    }
    // Clean the card; it is re-dirtied at slot-processing time if an
    // old-to-young edge survives. While a concurrent mark cycle is
    // active the card stays dirty — its mutation record belongs to the
    // remark, and re-scanning it next scavenge is merely redundant work.
    if !heap.concmark_barrier() {
        heap.mem.write_u8(card, charon_heap::cardtable::CLEAN);
    }
    let t = threads.least_loaded();
    let now = threads.clock(t);
    let end = sys.host_op(t % cores, now, 4, &[(card, AccessKind::Write)]);
    bd.record(Bucket::Other, end - now);
    threads.advance(t, end, true);
}

/// Processes one popped slot: resolve forwarding or copy the referent and
/// Scan&Push its fields.
#[allow(clippy::too_many_arguments)]
fn process_slot(
    sys: &mut System,
    heap: &mut JavaHeap,
    threads: &mut GcThreads,
    bd: &mut Breakdown,
    st: &mut MinorStats,
    stack: &mut ObjStack,
    discovered: &mut Vec<VAddr>,
    free: &mut crate::freelist::FreeStore,
    slot: VAddr,
    t: usize,
    cores: usize,
    tenuring: u8,
) {
    let r = heap.read_ref(slot);
    if r.is_null() || !heap.in_young(r) {
        return;
    }
    if object::mark_state(&heap.mem, r) == MarkState::Forwarded {
        let fwd = object::forwarding(&heap.mem, r);
        heap.write_ref(slot, fwd);
        let mut dirty_card = Vec::new();
        if heap.in_old(slot) && heap.in_young(fwd) {
            {
                let ct = *heap.cards();
                ct.dirty(&mut heap.mem, slot);
            }
            dirty_card.push((heap.cards().card_addr(slot), AccessKind::Write));
        }
        let now = threads.clock(t);
        let dirtied = !dirty_card.is_empty();
        let mut acc = vec![(slot, AccessKind::Write)];
        acc.extend(dirty_card);
        let end = sys.host_op(t % cores, now, 6, &acc);
        bd.record(Bucket::Other, end - now);
        threads.advance(t, end, true);
        if dirtied {
            let now = threads.clock(t);
            let card = heap.cards().card_addr(slot);
            let end = crate::integrity::after_card_dirty(sys, heap, t % cores, now, card);
            if end > now {
                bd.record(Bucket::Other, end - now);
                threads.advance(t, end, true);
            }
        }
        return;
    }

    // Copy or promote.
    let size = heap.obj_size_words(r);
    let bytes = size * 8;
    let age = object::age(&heap.mem, r);
    let to_free = heap.to_space().free_bytes();
    let dest = if age + 1 < tenuring && to_free >= bytes { heap.alloc_to(size) } else { None };
    let (dest, promoted) = match dest {
        Some(d) => (d, false),
        // Promotion allocates from dead ranges first (the free store;
        // empty and a constant-time `None` under PS), then the frontier.
        None => match free.allocate_old(heap, size).or_else(|| heap.alloc_old(size)) {
            Some(d) => (d, true),
            // Promotion failure: Old is full. Fall back to the to-space
            // even for aged objects (HotSpot similarly keeps the object in
            // the young generation when a scavenge cannot promote).
            None => match heap.alloc_to(size) {
                Some(d) => (d, false),
                None => panic!(
                    "promotion failure: neither Old nor the survivor space can take {size} words —                      the triggering policy should have run a full collection first"
                ),
            },
        },
    };
    heap.copy_object_words(r, dest, size);
    object::forward_to(&mut heap.mem, r, dest);
    heap.write_ref(slot, dest);
    object::set_age(&mut heap.mem, dest, age + 1);
    if heap.in_old(slot) && !promoted {
        {
            let ct = *heap.cards();
            ct.dirty(&mut heap.mem, slot);
        }
    }
    if promoted {
        st.promoted_bytes += bytes;
    } else {
        st.survived_bytes += bytes;
    }
    st.objects_copied += 1;

    // Timing: the Copy primitive plus per-object fixup.
    {
        let now = threads.clock(t);
        let end = sys.prim_copy(t % cores, now, r, dest, bytes);
        bd.record(Bucket::Copy, end - now);
        threads.advance(t, end, !offloaded(sys, true));
        let now = threads.clock(t);
        let end =
            sys.host_op(t % cores, now, sys.costs.copy_fixup, &[(r, AccessKind::Write), (slot, AccessKind::Write)]);
        bd.record(Bucket::Copy, end - now);
        threads.advance(t, end, true);
        // Integrity: the Copy unit's outputs — the evacuated payload, the
        // forwarding word, and the re-dirtied card — are checked (and, on
        // damage, repaired) right after the primitive completes, before
        // Scan&Push reads the new copy's klass word.
        let now = threads.clock(t);
        let mut iend = crate::integrity::after_copy(sys, heap, t % cores, now, r, dest, size);
        iend = crate::integrity::after_forward(sys, heap, t % cores, iend, r, dest, age);
        if heap.in_old(slot) && !promoted {
            let card = heap.cards().card_addr(slot);
            iend = crate::integrity::after_card_dirty(sys, heap, t % cores, iend, card);
        }
        if iend > now {
            bd.record(Bucket::Copy, iend - now);
            threads.advance(t, iend, true);
        }
    }

    // Scan&Push the new copy's fields.
    let klass_kind = heap.obj_klass(dest).kind();
    let slots = heap.ref_slots(dest);
    if slots.is_empty() {
        return;
    }
    // `java.lang.ref.Reference` holders: the referent (first declared
    // reference field) is weak — discover it instead of scavenging it.
    let weak_slot = (klass_kind == charon_heap::klass::KlassKind::InstanceRef).then(|| slots[0]);
    let mut refs = Vec::new();
    let mut scan_cards = Vec::new();
    for s in &slots {
        if weak_slot == Some(*s) {
            discovered.push(*s);
            continue;
        }
        let v = heap.read_ref(*s);
        if v.is_null() || !heap.in_young(v) {
            continue; // MinorGC only chases young referents
        }
        if object::mark_state(&heap.mem, v) == MarkState::Forwarded {
            let fwd = object::forwarding(&heap.mem, v);
            heap.write_ref(*s, fwd);
            if promoted && heap.in_young(fwd) {
                {
                    let ct = *heap.cards();
                    ct.dirty(&mut heap.mem, *s);
                }
                scan_cards.push(heap.cards().card_addr(*s));
                refs.push(ScanRef {
                    referent: v,
                    action: ScanAction::UpdateFieldAndCard { field_slot: *s, card_addr: heap.cards().card_addr(*s) },
                });
            } else {
                refs.push(ScanRef { referent: v, action: ScanAction::UpdateField { field_slot: *s } });
            }
        } else {
            let pushed = stack.push(*s);
            refs.push(ScanRef { referent: v, action: ScanAction::Push { stack_slot: pushed } });
        }
    }
    let fields_start = slots[0];
    let field_bytes = (slots.len() as u64) * 8;
    let hw = klass_kind.charon_supported();
    let now = threads.clock(t);
    let end = sys.prim_scan_push(t % cores, now, fields_start, field_bytes, &refs, hw);
    bd.record(Bucket::ScanPush, end - now);
    threads.advance(t, end, !offloaded(sys, hw));
    // Integrity: cards the scan actions dirtied are checked post-primitive.
    if !scan_cards.is_empty() {
        let now = threads.clock(t);
        let mut iend = now;
        for card in scan_cards {
            iend = crate::integrity::after_card_dirty(sys, heap, t % cores, iend, card);
        }
        if iend > now {
            bd.record(Bucket::ScanPush, iend - now);
            threads.advance(t, iend, true);
        }
    }
}
