//! Per-GC heap demographics: the paper's dead-object-ratio observation
//! as a first-class report.
//!
//! Charon's motivating measurement (Figs. 2/5) is that most of the heap
//! is *dead* at each collection — which is why clearing it near memory
//! pays. A [`Census`] makes that measurable here: around every
//! collection it walks the collected spaces and tallies, per klass and
//! per space, how many objects (and bytes) survived versus died, plus
//! the survivor age distribution and promotion traffic that the
//! tenuring policy acts on.
//!
//! The pass is purely functional — it reads the simulated heap without
//! charging any simulated time — and opt-in, so runs without a census
//! are bit-identical to runs before this module existed.
//!
//! How liveness is recovered without a shadow mark set:
//!
//! * **MinorGC** copies live objects out of eden/from-space and never
//!   writes into those source extents, so after the scavenge a source
//!   header still reads intact: `Forwarded` means live (the forwarding
//!   pointer tells us whether it was promoted and what age it carries),
//!   anything else died. Old space is not collected by a scavenge and is
//!   reported uncollected.
//! * **MajorGC** compacts every live object (old and young) downward
//!   into `[old.start, packed_end)` and clears marks only there. Young
//!   source extents are never overwritten, so `Marked` headers identify
//!   the young survivors; per-klass live totals come from walking the
//!   packed region, and per-klass dead is the difference against the
//!   pre-GC allocation walk.

use crate::collector::GcKind;
use charon_heap::addr::VAddr;
use charon_heap::heap::JavaHeap;
use charon_heap::object::{self, MarkState, MAX_AGE};
use charon_sim::json::Json;
use std::fmt;

/// Live/dead tallies for one klass in one collection's collected spaces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KlassCensus {
    /// Klass name (from the heap's klass table).
    pub name: String,
    /// Objects that survived the collection.
    pub live_count: u64,
    /// Bytes of surviving objects.
    pub live_bytes: u64,
    /// Objects that died.
    pub dead_count: u64,
    /// Bytes of dead objects.
    pub dead_bytes: u64,
}

/// Live/dead tallies for one heap space at one collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceCensus {
    /// Space name ("eden", "survivor", "old").
    pub name: &'static str,
    /// Whether this collection actually collected the space. Uncollected
    /// spaces report everything live by definition.
    pub collected: bool,
    /// Bytes allocated in the space when the collection began.
    pub allocated_bytes: u64,
    /// Bytes of objects that survived.
    pub live_bytes: u64,
    /// Bytes of objects that died.
    pub dead_bytes: u64,
}

impl SpaceCensus {
    /// Fraction of the space's allocated bytes that died (0.0 when
    /// empty).
    pub fn dead_fraction(&self) -> f64 {
        if self.allocated_bytes == 0 {
            0.0
        } else {
            self.dead_bytes as f64 / self.allocated_bytes as f64
        }
    }
}

/// The demographics of one collection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CensusRecord {
    /// Collection ordinal (matches the collector's event index).
    pub seq: u64,
    /// Minor or major.
    pub kind: GcKind,
    /// Per-space tallies: eden, survivor (from-space), old.
    pub spaces: [SpaceCensus; 3],
    /// Per-klass tallies over the collected spaces, in klass-table order;
    /// klasses with no objects are omitted.
    pub per_klass: Vec<KlassCensus>,
    /// Post-copy age distribution of young survivors (MinorGC only):
    /// `age_hist[a]` objects now carry age `a`.
    pub age_hist: [u64; (MAX_AGE as usize) + 1],
    /// Objects promoted into Old by this scavenge.
    pub promoted_objects: u64,
    /// Bytes promoted into Old.
    pub promoted_bytes: u64,
    /// Objects that survived within the young generation.
    pub survived_objects: u64,
    /// Bytes that survived within the young generation.
    pub survived_bytes: u64,
    /// The tenuring threshold the scavenge used (0 for MajorGC).
    pub tenuring_threshold: u8,
}

impl CensusRecord {
    /// Bytes allocated across the *collected* spaces.
    pub fn collected_bytes(&self) -> u64 {
        self.spaces.iter().filter(|s| s.collected).map(|s| s.allocated_bytes).sum()
    }

    /// Bytes dead across the collected spaces.
    pub fn dead_bytes(&self) -> u64 {
        self.spaces.iter().filter(|s| s.collected).map(|s| s.dead_bytes).sum()
    }

    /// The paper's dead-object ratio: dead bytes over allocated bytes in
    /// the spaces this collection cleared.
    pub fn dead_fraction(&self) -> f64 {
        let total = self.collected_bytes();
        if total == 0 {
            0.0
        } else {
            self.dead_bytes() as f64 / total as f64
        }
    }

    /// Machine-readable form.
    pub fn to_json(&self) -> Json {
        let spaces = self
            .spaces
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("name", Json::str(s.name)),
                    ("collected", Json::Bool(s.collected)),
                    ("allocated_bytes", Json::U64(s.allocated_bytes)),
                    ("live_bytes", Json::U64(s.live_bytes)),
                    ("dead_bytes", Json::U64(s.dead_bytes)),
                    ("dead_fraction", Json::F64(s.dead_fraction())),
                ])
            })
            .collect();
        let klasses = self
            .per_klass
            .iter()
            .map(|k| {
                Json::obj(vec![
                    ("name", Json::str(&k.name)),
                    ("live_count", Json::U64(k.live_count)),
                    ("live_bytes", Json::U64(k.live_bytes)),
                    ("dead_count", Json::U64(k.dead_count)),
                    ("dead_bytes", Json::U64(k.dead_bytes)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("seq", Json::U64(self.seq)),
            ("kind", Json::str(self.kind.to_string())),
            ("dead_fraction", Json::F64(self.dead_fraction())),
            ("spaces", Json::Arr(spaces)),
            ("per_klass", Json::Arr(klasses)),
            ("age_hist", Json::Arr(self.age_hist.iter().map(|&n| Json::U64(n)).collect())),
            ("promoted_objects", Json::U64(self.promoted_objects)),
            ("promoted_bytes", Json::U64(self.promoted_bytes)),
            ("survived_objects", Json::U64(self.survived_objects)),
            ("survived_bytes", Json::U64(self.survived_bytes)),
            ("tenuring_threshold", Json::U64(u64::from(self.tenuring_threshold))),
        ])
    }
}

impl fmt::Display for CensusRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {}: {:.1}% dead ({} of {} bytes), {} promoted, {} survived",
            self.seq,
            self.kind,
            self.dead_fraction() * 100.0,
            self.dead_bytes(),
            self.collected_bytes(),
            self.promoted_bytes,
            self.survived_bytes
        )
    }
}

/// All censuses taken during one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Census {
    /// One record per collection, in order.
    pub records: Vec<CensusRecord>,
}

impl Census {
    /// An empty census log.
    pub fn new() -> Census {
        Census::default()
    }

    /// Mean dead fraction over collections of `kind` (0.0 when none ran).
    pub fn mean_dead_fraction(&self, kind: GcKind) -> f64 {
        let fractions: Vec<f64> = self
            .records
            .iter()
            .filter(|r| r.kind == kind)
            .map(CensusRecord::dead_fraction)
            .collect();
        if fractions.is_empty() {
            0.0
        } else {
            fractions.iter().sum::<f64>() / fractions.len() as f64
        }
    }

    /// Machine-readable form: the per-collection records plus run-level
    /// summary ratios.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("collections", Json::U64(self.records.len() as u64)),
            ("mean_dead_fraction_minor", Json::F64(self.mean_dead_fraction(GcKind::Minor))),
            ("mean_dead_fraction_major", Json::F64(self.mean_dead_fraction(GcKind::Major))),
            ("records", Json::Arr(self.records.iter().map(CensusRecord::to_json).collect())),
        ])
    }
}

/// The pre-collection snapshot a census needs: space extents (tops move
/// or reset during the GC) and, for MajorGC, the per-klass allocation
/// walk that dead counts are differenced against.
#[derive(Debug, Clone)]
pub struct PreGc {
    eden: (VAddr, VAddr),
    from: (VAddr, VAddr),
    old: (VAddr, VAddr),
    /// `(count, bytes)` allocated per klass id across all spaces
    /// (captured only for MajorGC).
    allocated_per_klass: Vec<(u64, u64)>,
}

/// Captures the pre-collection state. Call immediately before the GC.
pub fn pre(heap: &JavaHeap, kind: GcKind) -> PreGc {
    let extent = |s: &charon_heap::space::Space| (s.start(), s.top());
    let eden = extent(heap.eden());
    let from = extent(heap.from_space());
    let old = extent(heap.old());
    let mut allocated_per_klass = vec![(0u64, 0u64); heap.klasses().len()];
    if kind == GcKind::Major {
        for &(start, top) in &[eden, from, old] {
            for (obj, words) in heap.walk_objects_sized(start, top) {
                let slot = &mut allocated_per_klass[object::klass_id(&heap.mem, obj).0 as usize];
                slot.0 += 1;
                slot.1 += words * 8;
            }
        }
    }
    PreGc { eden, from, old, allocated_per_klass }
}

/// Builds the census record after the collection completed. `seq` is the
/// collection ordinal and `tenuring_threshold` the scavenge's threshold
/// (0 for MajorGC).
pub fn post(heap: &JavaHeap, kind: GcKind, seq: u64, pre: &PreGc, tenuring_threshold: u8) -> CensusRecord {
    let mut per_klass: Vec<KlassCensus> = heap
        .klasses()
        .iter()
        .map(|k| KlassCensus { name: k.name().to_string(), ..Default::default() })
        .collect();
    let mut age_hist = [0u64; (MAX_AGE as usize) + 1];
    let mut rec = CensusRecord {
        seq,
        kind,
        spaces: [
            SpaceCensus { name: "eden", collected: true, allocated_bytes: 0, live_bytes: 0, dead_bytes: 0 },
            SpaceCensus { name: "survivor", collected: true, allocated_bytes: 0, live_bytes: 0, dead_bytes: 0 },
            SpaceCensus {
                name: "old",
                collected: kind == GcKind::Major,
                allocated_bytes: 0,
                live_bytes: 0,
                dead_bytes: 0,
            },
        ],
        per_klass: Vec::new(),
        age_hist,
        promoted_objects: 0,
        promoted_bytes: 0,
        survived_objects: 0,
        survived_bytes: 0,
        tenuring_threshold,
    };

    let young = [(0usize, pre.eden), (1usize, pre.from)];
    match kind {
        GcKind::Minor => {
            // Source extents are intact: Forwarded ⇒ live, else dead.
            for &(si, (start, top)) in &young {
                rec.spaces[si].allocated_bytes = top - start;
                for (obj, words) in heap.walk_objects_sized(start, top) {
                    let bytes = words * 8;
                    let k = &mut per_klass[object::klass_id(&heap.mem, obj).0 as usize];
                    if object::mark_state(&heap.mem, obj) == MarkState::Forwarded {
                        rec.spaces[si].live_bytes += bytes;
                        k.live_count += 1;
                        k.live_bytes += bytes;
                        let dest = object::forwarding(&heap.mem, obj);
                        if heap.in_old(dest) {
                            rec.promoted_objects += 1;
                            rec.promoted_bytes += bytes;
                        } else {
                            rec.survived_objects += 1;
                            rec.survived_bytes += bytes;
                            age_hist[object::age(&heap.mem, dest) as usize] += 1;
                        }
                    } else {
                        rec.spaces[si].dead_bytes += bytes;
                        k.dead_count += 1;
                        k.dead_bytes += bytes;
                    }
                }
            }
            // A scavenge does not collect Old: everything there stays.
            rec.spaces[2].allocated_bytes = pre.old.1 - pre.old.0;
            rec.spaces[2].live_bytes = rec.spaces[2].allocated_bytes;
        }
        GcKind::Major => {
            // Every live object (old and young survivors) now sits packed
            // in [old.start, old.top): walk it for per-klass live totals.
            for (obj, words) in heap.walk_objects_sized(heap.old().start(), heap.old().top()) {
                let k = &mut per_klass[object::klass_id(&heap.mem, obj).0 as usize];
                k.live_count += 1;
                k.live_bytes += words * 8;
            }
            for (k, &(count, bytes)) in per_klass.iter_mut().zip(pre.allocated_per_klass.iter()) {
                k.dead_count = count.saturating_sub(k.live_count);
                k.dead_bytes = bytes.saturating_sub(k.live_bytes);
            }
            // Young source extents keep their mark words: Marked ⇒ live.
            let mut young_live = 0u64;
            for &(si, (start, top)) in &young {
                rec.spaces[si].allocated_bytes = top - start;
                for (obj, words) in heap.walk_objects_sized(start, top) {
                    let bytes = words * 8;
                    if object::mark_state(&heap.mem, obj) == MarkState::Marked {
                        rec.spaces[si].live_bytes += bytes;
                        young_live += bytes;
                    } else {
                        rec.spaces[si].dead_bytes += bytes;
                    }
                }
            }
            let old_alloc = pre.old.1 - pre.old.0;
            let total_live: u64 = per_klass.iter().map(|k| k.live_bytes).sum();
            rec.spaces[2].allocated_bytes = old_alloc;
            rec.spaces[2].live_bytes = total_live.saturating_sub(young_live).min(old_alloc);
            rec.spaces[2].dead_bytes = old_alloc - rec.spaces[2].live_bytes;
        }
    }

    rec.age_hist = age_hist;
    rec.per_klass = per_klass.into_iter().filter(|k| k.live_count + k.dead_count > 0).collect();
    rec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::Collector;
    use crate::system::System;
    use charon_heap::heap::{HeapConfig, JavaHeap};
    use charon_heap::klass::KlassKind;

    /// Empty spaces, empty records, and an empty census must all report
    /// a dead fraction of exactly zero rather than dividing by zero —
    /// the adaptive controller consumes these signals raw.
    #[test]
    fn dead_fraction_is_zero_on_empty_inputs() {
        let empty_space =
            SpaceCensus { name: "eden", collected: true, allocated_bytes: 0, live_bytes: 0, dead_bytes: 0 };
        assert_eq!(empty_space.dead_fraction(), 0.0);
        let record = CensusRecord {
            seq: 0,
            kind: GcKind::Minor,
            spaces: [
                empty_space,
                SpaceCensus { name: "survivor", collected: true, allocated_bytes: 0, live_bytes: 0, dead_bytes: 0 },
                // The uncollected old space never feeds the ratio, even
                // when it is the only space holding bytes.
                SpaceCensus { name: "old", collected: false, allocated_bytes: 4096, live_bytes: 4096, dead_bytes: 0 },
            ],
            per_klass: Vec::new(),
            age_hist: [0; (charon_heap::object::MAX_AGE as usize) + 1],
            promoted_objects: 0,
            promoted_bytes: 0,
            survived_objects: 0,
            survived_bytes: 0,
            tenuring_threshold: 0,
        };
        assert_eq!(record.collected_bytes(), 0);
        assert_eq!(record.dead_fraction(), 0.0);
        let census = Census::new();
        assert_eq!(census.mean_dead_fraction(GcKind::Minor), 0.0);
        assert_eq!(census.mean_dead_fraction(GcKind::Major), 0.0);
    }

    /// Drives enough garbage through a small heap to trigger scavenges
    /// with a census enabled, then checks the conservation invariant.
    #[test]
    fn census_conserves_bytes_per_space() {
        let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(4 << 20));
        let bytes = heap.klasses_mut().register_array("byte[]", KlassKind::TypeArray);
        let mut gc = Collector::new(System::ddr4(), &heap, 4);
        gc.census = Some(Census::new());
        for _ in 0..4000 {
            let obj = gc.alloc(&mut heap, bytes, 64).unwrap();
            heap.add_root(obj);
            if heap.root_count() > 64 {
                heap.set_root(heap.root_count() - 64, charon_heap::VAddr::NULL);
            }
        }
        let census = gc.census.as_ref().unwrap();
        assert!(!census.records.is_empty(), "no collections ran");
        assert_eq!(census.records.len(), gc.events.len(), "one record per collection");
        for r in &census.records {
            for s in &r.spaces {
                assert_eq!(
                    s.live_bytes + s.dead_bytes,
                    s.allocated_bytes,
                    "space {} of census #{} leaks bytes",
                    s.name,
                    r.seq
                );
            }
            // Per-klass totals cover the same bytes as the collected spaces.
            let klass_total: u64 = r.per_klass.iter().map(|k| k.live_bytes + k.dead_bytes).sum();
            let expect: u64 = match r.kind {
                GcKind::Minor => r.spaces[0].allocated_bytes + r.spaces[1].allocated_bytes,
                GcKind::Major => r.spaces.iter().map(|s| s.allocated_bytes).sum(),
            };
            assert_eq!(klass_total, expect, "census #{} per-klass bytes", r.seq);
            // With most roots dropped, garbage dominates each scavenge.
            if r.kind == GcKind::Minor {
                assert!(r.dead_fraction() > 0.2, "census #{}: dead fraction {}", r.seq, r.dead_fraction());
            }
        }
    }

    #[test]
    fn minor_census_tracks_promotion_and_ages() {
        let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(4 << 20));
        let bytes = heap.klasses_mut().register_array("byte[]", KlassKind::TypeArray);
        let mut gc = Collector::new(System::ddr4(), &heap, 4);
        gc.census = Some(Census::new());
        // Long-lived roots survive repeated scavenges and eventually tenure.
        for _ in 0..8000 {
            let obj = gc.alloc(&mut heap, bytes, 64).unwrap();
            if heap.root_count() < 400 {
                heap.add_root(obj);
            }
        }
        let census = gc.census.take().unwrap();
        let minors: Vec<_> = census.records.iter().filter(|r| r.kind == GcKind::Minor).collect();
        assert!(!minors.is_empty());
        let survived: u64 = minors.iter().map(|r| r.survived_objects).sum();
        let ages: u64 = minors.iter().map(|r| r.age_hist.iter().sum::<u64>()).sum();
        assert_eq!(survived, ages, "every young survivor lands in one age bucket");
        // The census's survived/promoted tallies agree with the scavenger's.
        for (r, e) in census.records.iter().zip(gc.events.iter()) {
            if let Some(m) = e.minor {
                assert_eq!(r.survived_bytes, m.survived_bytes, "census #{}", r.seq);
                assert_eq!(r.promoted_bytes, m.promoted_bytes, "census #{}", r.seq);
                assert_eq!(r.tenuring_threshold, m.tenuring_threshold);
            }
        }
        assert!(census.to_json().get("records").is_some());
    }

    #[test]
    fn json_round_trips() {
        let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(4 << 20));
        let bytes = heap.klasses_mut().register_array("byte[]", KlassKind::TypeArray);
        let mut gc = Collector::new(System::ddr4(), &heap, 4);
        gc.census = Some(Census::new());
        for _ in 0..3000 {
            gc.alloc(&mut heap, bytes, 64).unwrap();
        }
        let census = gc.census.take().unwrap();
        let text = census.to_json().to_string();
        let back = Json::parse(&text).expect("census json parses");
        assert_eq!(back.get("collections").and_then(|v| v.as_u64()), Some(census.records.len() as u64));
    }
}
