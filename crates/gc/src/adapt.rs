//! Adaptive offload controller: census-driven [`OffloadMask`] auto-tuning.
//!
//! The paper fixes the set of offloaded primitives per platform, but §3.3's
//! own selection argument implies the right set depends on what the heap is
//! doing: bulk workloads with large, dying-young objects amortize the
//! per-object dispatch cost of *Copy*/*Scan&Push*, while pointer-chasing
//! workloads with tiny survivors pay more in dispatch than the units give
//! back. The [`crate::census`] layer (PR 4) measures exactly the signals
//! that predict this — per-collection survivor volume and dead fractions —
//! and this module closes the loop: at each GC prologue a [`Policy`] reads
//! a [`Signals`] snapshot and chooses the next [`OffloadMask`].
//!
//! Three policies ship behind the one trait:
//!
//! * [`Static`] — returns a fixed mask; with the platform default this is
//!   bit-identical to running without a controller (the fingerprint
//!   baselines pin it).
//! * [`CensusThreshold`] — a two-regime rule on mean survivor size and
//!   dead fraction with hysteresis, so the mask cannot flap between
//!   adjacent minor GCs while a signal sits on a threshold.
//! * [`Bandit`] — seeded epsilon-greedy over a fixed candidate-mask table,
//!   using the measured pause as (negative) reward. Randomness comes only
//!   from the workspace's deterministic [`StdRng`], so identical seeds
//!   replay bit-for-bit.
//!
//! Whatever a policy asks for, the [`Controller`] clamps it against the
//! watchdog verdicts from the PR 2 recovery ladder
//! ([`crate::system::System::unit_health`]): a unit class the watchdog
//! declared dead is never offloaded to again, no matter how attractive the
//! census makes it look. Every decision — inputs, cost-model predictions,
//! requested and clamped masks, and later the realized pause — is appended
//! to a [`DecisionJournal`] and mirrored into telemetry as
//! [`charon_sim::telemetry::Event::Decision`], so an adaptive run is as
//! auditable as a static one.

use crate::breakdown::Breakdown;
use crate::census::{Census, CensusRecord};
use crate::collector::GcKind;
use crate::costs::CostModel;
use crate::system::{OffloadMask, System};
use charon_core::packet::PrimType;
use charon_sim::json::Json;
use charon_sim::time::Ps;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// How many recent census records the signal averages smooth over. Small
/// on purpose: phase shifts should be seen within a collection or two.
pub const SIGNAL_WINDOW: usize = 2;

/// Everything a [`Policy`] may look at when deciding the next mask.
/// Borrowed from the collector at the GC prologue; policies must treat it
/// as read-only truth about the past, not mutate anything through it.
#[derive(Debug)]
pub struct Signals<'a> {
    /// Ordinal of the collection about to run (0-based).
    pub seq: u64,
    /// Kind of the collection about to run.
    pub kind: GcKind,
    /// The mask currently installed on the system.
    pub mask: OffloadMask,
    /// Watchdog verdict per unit class, indexed by [`PrimType::encode`];
    /// `true` means the recovery ladder killed the class.
    pub unit_dead: [bool; 4],
    /// Census records of every finished collection, oldest first. Empty
    /// before the first collection or when the census is disabled.
    pub records: &'a [CensusRecord],
    /// Pause of the immediately preceding collection, if any.
    pub last_pause: Option<Ps>,
    /// Phase-time breakdown of the preceding collection, if any.
    pub last_breakdown: Option<&'a Breakdown>,
    /// The host software-path cost model, for predictions.
    pub costs: &'a CostModel,
}

impl Signals<'_> {
    /// Mean size in bytes of a surviving (copied or promoted) object over
    /// the last [`SIGNAL_WINDOW`] records — the signal that separates
    /// bulk workloads (hundreds of bytes and up) from pointer-chasing
    /// ones (tens of bytes). `None` before the first record or when no
    /// object survived.
    pub fn mean_survivor_bytes(&self) -> Option<f64> {
        let tail = self.records.iter().rev().take(SIGNAL_WINDOW);
        let (mut objs, mut bytes) = (0u64, 0u64);
        for r in tail {
            objs += r.survived_objects + r.promoted_objects;
            bytes += r.survived_bytes + r.promoted_bytes;
        }
        (objs > 0).then(|| bytes as f64 / objs as f64)
    }

    /// Mean dead fraction over the last [`SIGNAL_WINDOW`] records; `None`
    /// before the first record.
    pub fn mean_dead_fraction(&self) -> Option<f64> {
        let tail: Vec<f64> = self
            .records
            .iter()
            .rev()
            .take(SIGNAL_WINDOW)
            .map(CensusRecord::dead_fraction)
            .collect();
        if tail.is_empty() {
            None
        } else {
            Some(tail.iter().sum::<f64>() / tail.len() as f64)
        }
    }

    /// Cost-model prediction from the most recent census record, if any.
    pub fn prediction(&self) -> Option<Prediction> {
        self.records.last().map(|r| predict(self.costs, r))
    }
}

/// A [`CostModel`] forecast of the next collection's offloadable work,
/// extrapolated from the last census record. Expressed in host
/// instructions (the model's native unit) so it is platform-independent:
/// the host cost is what offloading saves, the dispatch cost is what it
/// adds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted host software-path instructions for copying the survivor
    /// volume (per-line loop plus per-object fixup).
    pub host_copy_instr: u64,
    /// Predicted instructions spent issuing offload intrinsics for the
    /// same objects — the overhead adaptation is trading against.
    pub dispatch_instr: u64,
}

/// Predicts the next collection's copy-path cost from one census record.
pub fn predict(costs: &CostModel, r: &CensusRecord) -> Prediction {
    let bytes = r.survived_bytes + r.promoted_bytes;
    let objs = r.survived_objects + r.promoted_objects;
    Prediction {
        host_copy_instr: bytes.div_ceil(64) * costs.copy_per_line + objs * costs.copy_fixup,
        dispatch_instr: objs * costs.prim_dispatch,
    }
}

/// An offload-selection policy. Implementations must be deterministic
/// functions of their own state and the [`Signals`] they are shown — no
/// wall-clock, no OS randomness — so any run can be replayed exactly.
pub trait Policy: fmt::Debug {
    /// Stable lowercase name (journal/telemetry/CLI key).
    fn name(&self) -> &'static str;

    /// Chooses the mask for the collection `sig` describes. The caller
    /// clamps the result against unit health before installing it.
    fn decide(&mut self, sig: &Signals<'_>) -> OffloadMask;

    /// Feeds back the realized pause of the collection the last
    /// [`Policy::decide`] covered.
    fn observe(&mut self, kind: GcKind, realized: Ps);

    /// Clone through the trait object ([`Collector`](crate::collector::Collector) derives `Clone`).
    fn box_clone(&self) -> Box<dyn Policy>;
}

impl Clone for Box<dyn Policy> {
    fn clone(&self) -> Box<dyn Policy> {
        self.box_clone()
    }
}

/// Today's behavior: one fixed mask for the whole run. With the platform
/// default mask this is indistinguishable — bit-identical fingerprints —
/// from running with no controller at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Static {
    /// The mask to hold.
    pub mask: OffloadMask,
}

impl Policy for Static {
    fn name(&self) -> &'static str {
        "static"
    }

    fn decide(&mut self, _sig: &Signals<'_>) -> OffloadMask {
        self.mask
    }

    fn observe(&mut self, _kind: GcKind, _realized: Ps) {}

    fn box_clone(&self) -> Box<dyn Policy> {
        Box::new(*self)
    }
}

/// Two-regime threshold rule with hysteresis.
///
/// Two census signals discriminate the regimes (measured in this repo's
/// calibration runs). Mean survivor size: bulk workloads copy ~1 KB
/// objects and win from offloading every primitive, pointer-chasing
/// workloads copy ~50–100 B objects and lose the per-object dispatch
/// overhead. Dead fraction: a mostly-dead nursery is exactly what the
/// near-memory units clear without host traffic (the paper's headline
/// case), while a mostly-live nursery turns the scavenge into per-object
/// copy fix-ups the host does cheaper. Either signal alone can demand the
/// bulk regime (`survivor >= survivor_on` **or** `dead >= dead_on`); the
/// pointer regime needs both to read low. The `..._on` > `..._off` gap
/// per signal forms a hysteresis band: inside the band the previous
/// regime sticks, so a signal hovering on one threshold cannot flap the
/// mask between adjacent minor GCs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CensusThreshold {
    /// Mask installed in the bulk regime (default: everything).
    pub bulk_mask: OffloadMask,
    /// Mask installed in the pointer regime (default: nothing — the
    /// dispatch overhead outweighs every unit for tiny survivors).
    pub pointer_mask: OffloadMask,
    /// Enter the bulk regime at/above this mean survivor size (bytes).
    pub survivor_on: f64,
    /// The pointer regime needs the mean survivor size below this (bytes).
    pub survivor_off: f64,
    /// Enter the bulk regime at/above this mean dead fraction.
    pub dead_on: f64,
    /// The pointer regime needs the mean dead fraction below this.
    pub dead_off: f64,
    /// Current regime (`true` = bulk). Starts `true`: before any census
    /// record exists the controller behaves like the platform default.
    bulk: bool,
}

impl Default for CensusThreshold {
    fn default() -> CensusThreshold {
        CensusThreshold {
            bulk_mask: OffloadMask::all(),
            pointer_mask: OffloadMask::none(),
            survivor_on: 512.0,
            survivor_off: 256.0,
            dead_on: 0.75,
            dead_off: 0.55,
            bulk: true,
        }
    }
}

impl CensusThreshold {
    /// The calibrated default rule.
    pub fn new() -> CensusThreshold {
        CensusThreshold::default()
    }

    /// The regime the last decision was in (`true` = bulk).
    pub fn in_bulk_regime(&self) -> bool {
        self.bulk
    }
}

impl Policy for CensusThreshold {
    fn name(&self) -> &'static str {
        "census"
    }

    fn decide(&mut self, sig: &Signals<'_>) -> OffloadMask {
        // Major collections evacuate the whole live old generation — a
        // bulk copy by construction — so they always run with the bulk
        // mask and never consult (or disturb) the regime latch.
        if sig.kind == GcKind::Major {
            return self.bulk_mask;
        }
        if let (Some(survivor), Some(dead)) = (sig.mean_survivor_bytes(), sig.mean_dead_fraction()) {
            if survivor >= self.survivor_on || dead >= self.dead_on {
                self.bulk = true;
            } else if survivor < self.survivor_off && dead < self.dead_off {
                self.bulk = false;
            }
            // In the band between the thresholds the previous regime holds.
        }
        if self.bulk {
            self.bulk_mask
        } else {
            self.pointer_mask
        }
    }

    fn observe(&mut self, _kind: GcKind, _realized: Ps) {}

    fn box_clone(&self) -> Box<dyn Policy> {
        Box::new(*self)
    }
}

/// The candidate masks the [`Bandit`] explores over: the two extremes,
/// each single primitive, and the two pairs the calibration runs showed
/// move together (*Copy*+*Scan&Push* carry the bulk win; *Search*+*Bitmap
/// Count* are cheap either way).
pub fn bandit_arms() -> Vec<OffloadMask> {
    let m = |s: &str| s.parse::<OffloadMask>().expect("static arm spec");
    vec![
        OffloadMask::all(),
        OffloadMask::none(),
        m("copy"),
        m("search"),
        m("scan-push"),
        m("bitmap-count"),
        m("copy+scan-push"),
        m("search+bitmap-count"),
    ]
}

/// Seeded epsilon-greedy bandit over [`bandit_arms`].
///
/// Reward is the negated measured pause, tracked separately per
/// [`GcKind`] (minor and major pauses differ by orders of magnitude, so a
/// shared table would let majors poison the minor ranking). Warmup plays
/// each arm once in table order before the epsilon coin ever flips;
/// afterwards it explores with probability `epsilon` and otherwise plays
/// the arm with the lowest mean pause. All randomness comes from the
/// workspace [`StdRng`], so a seed fully determines the decision
/// sequence.
#[derive(Debug, Clone)]
pub struct Bandit {
    /// Exploration probability.
    pub epsilon: f64,
    arms: Vec<OffloadMask>,
    /// Pull counts, `[kind][arm]` with minor = row 0, major = row 1.
    pulls: [Vec<u64>; 2],
    /// Summed realized pauses, same indexing.
    total_pause: [Vec<u128>; 2],
    last_arm: Option<(usize, usize)>,
    rng: StdRng,
}

fn kind_row(kind: GcKind) -> usize {
    match kind {
        GcKind::Minor => 0,
        GcKind::Major => 1,
    }
}

impl Bandit {
    /// A bandit over [`bandit_arms`] with the default ε = 0.1.
    pub fn new(seed: u64) -> Bandit {
        Bandit::with_arms(seed, 0.1, bandit_arms())
    }

    /// Full-control constructor.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn with_arms(seed: u64, epsilon: f64, arms: Vec<OffloadMask>) -> Bandit {
        assert!(!arms.is_empty(), "bandit needs at least one arm");
        let n = arms.len();
        Bandit {
            epsilon,
            arms,
            pulls: [vec![0; n], vec![0; n]],
            total_pause: [vec![0; n], vec![0; n]],
            last_arm: None,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The candidate table (for reports).
    pub fn arms(&self) -> &[OffloadMask] {
        &self.arms
    }

    fn mean_pause(&self, row: usize, arm: usize) -> f64 {
        if self.pulls[row][arm] == 0 {
            f64::INFINITY
        } else {
            self.total_pause[row][arm] as f64 / self.pulls[row][arm] as f64
        }
    }
}

impl Policy for Bandit {
    fn name(&self) -> &'static str {
        "bandit"
    }

    fn decide(&mut self, sig: &Signals<'_>) -> OffloadMask {
        let row = kind_row(sig.kind);
        let arm = if let Some(cold) = (0..self.arms.len()).find(|&i| self.pulls[row][i] == 0) {
            cold
        } else if self.rng.gen_bool(self.epsilon) {
            self.rng.gen_range(0..self.arms.len())
        } else {
            (0..self.arms.len())
                .min_by(|&a, &b| self.mean_pause(row, a).total_cmp(&self.mean_pause(row, b)))
                .expect("arms is non-empty")
        };
        self.last_arm = Some((row, arm));
        self.arms[arm]
    }

    fn observe(&mut self, kind: GcKind, realized: Ps) {
        let row = kind_row(kind);
        if let Some((decided_row, arm)) = self.last_arm.take() {
            if decided_row == row {
                self.pulls[row][arm] += 1;
                self.total_pause[row][arm] += u128::from(realized.0);
            }
        }
    }

    fn box_clone(&self) -> Box<dyn Policy> {
        Box::new(self.clone())
    }
}

/// Parseable policy selector, for run drivers and the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`Static`] — hold the platform mask.
    Static,
    /// [`CensusThreshold`].
    Census,
    /// [`Bandit`] (epsilon-greedy, seeded).
    Bandit,
}

impl PolicyKind {
    /// Every selector, in report order.
    pub const ALL: [PolicyKind; 3] = [PolicyKind::Static, PolicyKind::Census, PolicyKind::Bandit];

    /// Stable lowercase name (CLI/JSON key).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Static => "static",
            PolicyKind::Census => "census",
            PolicyKind::Bandit => "bandit",
        }
    }

    /// Instantiates the policy: `static_mask` seeds [`Static`], `seed`
    /// drives the [`Bandit`].
    pub fn build(self, static_mask: OffloadMask, seed: u64) -> Box<dyn Policy> {
        match self {
            PolicyKind::Static => Box::new(Static { mask: static_mask }),
            PolicyKind::Census => Box::new(CensusThreshold::new()),
            PolicyKind::Bandit => Box::new(Bandit::new(seed)),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<PolicyKind, String> {
        match s.to_ascii_lowercase().as_str() {
            "static" => Ok(PolicyKind::Static),
            "census" | "census-threshold" => Ok(PolicyKind::Census),
            "bandit" => Ok(PolicyKind::Bandit),
            other => Err(format!("unknown policy {other:?} (expected static, census, or bandit)")),
        }
    }
}

/// One journaled controller decision: the inputs the policy saw, what it
/// asked for, what survived the unit-health clamp, and (once the
/// collection finished) the pause it bought.
#[derive(Debug, Clone)]
pub struct Decision {
    /// Collection ordinal the decision covered.
    pub seq: u64,
    /// Collection kind.
    pub kind: GcKind,
    /// Name of the deciding policy.
    pub policy: &'static str,
    /// The mask the policy returned.
    pub requested: OffloadMask,
    /// The mask actually installed after clamping dead units off.
    pub chosen: OffloadMask,
    /// Watchdog verdicts at decision time ([`PrimType::encode`] order).
    pub unit_dead: [bool; 4],
    /// Mean survivor size signal, when census records existed.
    pub survivor_bytes: Option<f64>,
    /// Mean dead fraction signal, when census records existed.
    pub dead_fraction: Option<f64>,
    /// Cost-model forecast at decision time.
    pub predicted: Option<Prediction>,
    /// The collection's measured pause; `None` until the epilogue hook
    /// fills it in.
    pub realized_pause: Option<Ps>,
}

impl Decision {
    /// Machine-readable view; round-trips through [`Json::parse`].
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("seq", Json::U64(self.seq)),
            (
                "kind",
                Json::str(match self.kind {
                    GcKind::Minor => "minor",
                    GcKind::Major => "major",
                }),
            ),
            ("policy", Json::str(self.policy)),
            ("requested", Json::Str(self.requested.to_string())),
            ("chosen", Json::Str(self.chosen.to_string())),
            ("unit_dead", Json::Arr(self.unit_dead.iter().map(|&d| Json::Bool(d)).collect())),
        ];
        if let Some(s) = self.survivor_bytes {
            fields.push(("survivor_bytes", Json::F64(s)));
        }
        if let Some(d) = self.dead_fraction {
            fields.push(("dead_fraction", Json::F64(d)));
        }
        if let Some(p) = self.predicted {
            fields.push(("predicted_host_copy_instr", Json::U64(p.host_copy_instr)));
            fields.push(("predicted_dispatch_instr", Json::U64(p.dispatch_instr)));
        }
        if let Some(p) = self.realized_pause {
            fields.push(("realized_pause_ps", Json::U64(p.0)));
        }
        Json::obj(fields)
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{} {} {}: {}", self.seq, self.kind, self.policy, self.chosen)?;
        if self.requested != self.chosen {
            write!(f, " (requested {}, clamped by dead units)", self.requested)?;
        }
        if let Some(p) = self.realized_pause {
            write!(f, " pause {p}")?;
        }
        Ok(())
    }
}

/// The append-only decision log of one run.
#[derive(Debug, Clone, Default)]
pub struct DecisionJournal {
    /// Decisions in collection order.
    pub decisions: Vec<Decision>,
}

impl DecisionJournal {
    /// How many decisions changed the installed mask relative to the
    /// previous collection's (a flap/stability metric).
    pub fn mask_switches(&self) -> usize {
        self.decisions.windows(2).filter(|w| w[0].chosen != w[1].chosen).count()
    }

    /// Machine-readable view: `{"policy": ..., "decisions": [...]}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("policy", Json::str(self.decisions.first().map_or("none", |d| d.policy))),
            ("mask_switches", Json::U64(self.mask_switches() as u64)),
            ("decisions", Json::Arr(self.decisions.iter().map(Decision::to_json).collect())),
        ])
    }
}

/// The controller the collector carries: a policy plus its journal.
///
/// [`Controller::decide`] runs at the GC prologue (before any collection
/// work is timed) and [`Controller::observe`] at the epilogue. Both are
/// timing-invisible: they read signals and install a mask, but never
/// advance the simulated clock themselves.
#[derive(Debug, Clone)]
pub struct Controller {
    /// The deciding policy.
    pub policy: Box<dyn Policy>,
    /// Every decision made so far.
    pub journal: DecisionJournal,
}

impl Controller {
    /// Wraps a policy with an empty journal.
    pub fn new(policy: Box<dyn Policy>) -> Controller {
        Controller { policy, journal: DecisionJournal::default() }
    }

    /// GC-prologue hook: build the [`Signals`] snapshot, let the policy
    /// choose, clamp the choice against unit health, install it on the
    /// system, and journal + telemetry the decision.
    pub fn decide(
        &mut self,
        sys: &mut System,
        census: Option<&Census>,
        last: Option<&crate::collector::GcEvent>,
        kind: GcKind,
        now: Ps,
    ) {
        let seq = sys.collection_seq;
        let sig = Signals {
            seq,
            kind,
            mask: sys.offload,
            unit_dead: sys.unit_health(),
            records: census.map_or(&[][..], |c| c.records.as_slice()),
            last_pause: last.map(|e| e.wall),
            last_breakdown: last.map(|e| &e.breakdown),
            costs: &sys.costs,
        };
        let requested = self.policy.decide(&sig);
        let mut chosen = requested;
        for p in PrimType::ALL {
            if sig.unit_dead[p.encode() as usize] {
                chosen.set(p, false);
            }
        }
        let decision = Decision {
            seq,
            kind,
            policy: self.policy.name(),
            requested,
            chosen,
            unit_dead: sig.unit_dead,
            survivor_bytes: sig.mean_survivor_bytes(),
            dead_fraction: sig.mean_dead_fraction(),
            predicted: sig.prediction(),
            realized_pause: None,
        };
        sys.offload = chosen;
        let policy_name = self.policy.name();
        sys.telemetry.record(|| charon_sim::telemetry::Event::Decision {
            seq,
            policy: policy_name,
            mask: chosen.to_string(),
            at: now,
        });
        self.journal.decisions.push(decision);
    }

    /// GC-epilogue hook: record the realized pause on the last decision
    /// and feed it back to the policy.
    pub fn observe(&mut self, kind: GcKind, realized: Ps) {
        if let Some(d) = self.journal.decisions.last_mut() {
            d.realized_pause = Some(realized);
        }
        self.policy.observe(kind, realized);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::SpaceCensus;
    use charon_heap::object::MAX_AGE;

    fn record(survived_objects: u64, survived_bytes: u64, dead_bytes: u64, live_bytes: u64) -> CensusRecord {
        CensusRecord {
            seq: 0,
            kind: GcKind::Minor,
            spaces: [
                SpaceCensus {
                    name: "eden",
                    collected: true,
                    allocated_bytes: live_bytes + dead_bytes,
                    live_bytes,
                    dead_bytes,
                },
                SpaceCensus { name: "survivor", collected: true, allocated_bytes: 0, live_bytes: 0, dead_bytes: 0 },
                SpaceCensus { name: "old", collected: false, allocated_bytes: 0, live_bytes: 0, dead_bytes: 0 },
            ],
            per_klass: Vec::new(),
            age_hist: [0; (MAX_AGE as usize) + 1],
            promoted_objects: 0,
            promoted_bytes: 0,
            survived_objects,
            survived_bytes,
            tenuring_threshold: 0,
        }
    }

    fn signals<'a>(records: &'a [CensusRecord], costs: &'a CostModel) -> Signals<'a> {
        Signals {
            seq: records.len() as u64,
            kind: GcKind::Minor,
            mask: OffloadMask::all(),
            unit_dead: [false; 4],
            records,
            last_pause: None,
            last_breakdown: None,
            costs,
        }
    }

    #[test]
    fn static_policy_always_returns_its_mask() {
        let costs = CostModel::default();
        let mut p = Static { mask: OffloadMask::all() };
        let recs = [record(10, 10_000, 90_000, 10_000)];
        assert_eq!(p.decide(&signals(&recs, &costs)), OffloadMask::all());
        assert_eq!(p.decide(&signals(&[], &costs)), OffloadMask::all());
    }

    #[test]
    fn census_threshold_switches_regimes_with_hysteresis() {
        let costs = CostModel::default();
        let mut p = CensusThreshold::new();
        // No records yet: stays in the bulk (platform-default) regime.
        assert_eq!(p.decide(&signals(&[], &costs)), OffloadMask::all());
        // Tiny survivors, nothing dead: drops to the pointer regime.
        let pointer = [record(1000, 90_000, 0, 90_000)];
        assert_eq!(p.decide(&signals(&pointer, &costs)), OffloadMask::none());
        assert!(!p.in_bulk_regime());
        // In the hysteresis band (between off and on): regime sticks.
        let band = [record(100, 40_000, 40_000, 40_000)];
        assert_eq!(p.decide(&signals(&band, &costs)), OffloadMask::none());
        // Large dying survivors: back to bulk.
        let bulk = [record(100, 100_000, 400_000, 100_000)];
        assert_eq!(p.decide(&signals(&bulk, &costs)), OffloadMask::all());
        assert!(p.in_bulk_regime());
        // And the band again now sticks to bulk — same signal, other regime.
        assert_eq!(p.decide(&signals(&band, &costs)), OffloadMask::all());
    }

    #[test]
    fn census_threshold_majors_always_offload() {
        let costs = CostModel::default();
        let mut p = CensusThreshold::new();
        // Drop to the pointer regime first.
        let pointer = [record(1000, 90_000, 0, 90_000)];
        assert_eq!(p.decide(&signals(&pointer, &costs)), OffloadMask::none());
        // A major in the same regime still offloads everything...
        let mut major = signals(&pointer, &costs);
        major.kind = GcKind::Major;
        assert_eq!(p.decide(&major), OffloadMask::all());
        // ...and does not disturb the latch for the next minor.
        assert_eq!(p.decide(&signals(&pointer, &costs)), OffloadMask::none());
    }

    #[test]
    fn census_threshold_high_dead_fraction_alone_demands_bulk() {
        let costs = CostModel::default();
        let mut p = CensusThreshold::new();
        let pointer = [record(1000, 90_000, 0, 90_000)];
        assert_eq!(p.decide(&signals(&pointer, &costs)), OffloadMask::none());
        // A mostly-dead nursery is the near-memory clearing case even
        // when the survivors themselves are tiny.
        let dying = [record(1000, 90_000, 900_000, 90_000)];
        assert_eq!(p.decide(&signals(&dying, &costs)), OffloadMask::all());
        assert!(p.in_bulk_regime());
    }

    #[test]
    fn bandit_replays_bit_for_bit_from_one_seed() {
        let costs = CostModel::default();
        let recs = [record(64, 65_536, 65_536, 65_536)];
        let run = |seed: u64| -> Vec<OffloadMask> {
            let mut b = Bandit::new(seed);
            let mut out = Vec::new();
            for i in 0..64u64 {
                let m = b.decide(&signals(&recs, &costs));
                out.push(m);
                // Deterministic synthetic pause keyed to the mask.
                b.observe(GcKind::Minor, Ps(1_000 + 17 * m.count() as u64 + i % 3));
            }
            out
        };
        assert_eq!(run(7), run(7), "same seed replays identically");
        assert_ne!(run(7), run(8), "different seeds explore differently");
    }

    #[test]
    fn bandit_warmup_plays_every_arm_then_exploits_the_best() {
        let costs = CostModel::default();
        let recs = [record(64, 65_536, 65_536, 65_536)];
        let mut b = Bandit::with_arms(3, 0.0, bandit_arms());
        let n = b.arms().len();
        let mut seen = Vec::new();
        for arm_i in 0..n {
            let m = b.decide(&signals(&recs, &costs));
            seen.push(m);
            // Make arm 1 (none) the cheapest.
            b.observe(GcKind::Minor, Ps(if arm_i == 1 { 10 } else { 1_000 }));
        }
        assert_eq!(seen, bandit_arms(), "warmup walks the table in order");
        // epsilon = 0: pure exploitation must pick the cheapest arm.
        for _ in 0..8 {
            assert_eq!(b.decide(&signals(&recs, &costs)), OffloadMask::none());
            b.observe(GcKind::Minor, Ps(10));
        }
    }

    #[test]
    fn controller_never_enables_a_dead_unit() {
        let mut sys = System::charon();
        let mut ctl = Controller::new(Box::new(Static { mask: OffloadMask::all() }));
        // Simulate a watchdog-killed Copy unit: clamp must hold even
        // though the policy asks for everything.
        let sig = Signals {
            seq: 0,
            kind: GcKind::Minor,
            mask: sys.offload,
            unit_dead: [true, false, false, false],
            records: &[],
            last_pause: None,
            last_breakdown: None,
            costs: &sys.costs,
        };
        let requested = ctl.policy.decide(&sig);
        assert!(requested.copy);
        let mut chosen = requested;
        for p in PrimType::ALL {
            if sig.unit_dead[p.encode() as usize] {
                chosen.set(p, false);
            }
        }
        assert!(!chosen.copy, "dead Copy unit stays off");
        assert!(chosen.search && chosen.scan_push && chosen.bitmap_count);
        // The full decide() path (healthy device here) installs the mask
        // and journals the decision.
        ctl.decide(&mut sys, None, None, GcKind::Minor, Ps::ZERO);
        assert_eq!(sys.offload, OffloadMask::all());
        assert_eq!(ctl.journal.decisions.len(), 1);
        ctl.observe(GcKind::Minor, Ps(123));
        assert_eq!(ctl.journal.decisions[0].realized_pause, Some(Ps(123)));
    }

    #[test]
    fn rearmed_probing_unit_passes_the_clamp() {
        let mut sys = System::charon();
        let dev = sys.device.as_mut().expect("Charon has a device");
        dev.kill_unit(PrimType::Copy);
        sys.offload.set(PrimType::Copy, false);
        // While dead, the clamp strips Copy from whatever the policy asks.
        let mut ctl = Controller::new(Box::new(Static { mask: OffloadMask::all() }));
        ctl.decide(&mut sys, None, None, GcKind::Minor, Ps::ZERO);
        assert!(!sys.offload.copy, "dead Copy unit must stay clamped off");
        assert_eq!(ctl.journal.decisions[0].unit_dead, [true, false, false, false]);
        // Re-arm: after the probe interval the unit reports healthy again,
        // so the very next decide() lets the requested mask through whole.
        sys.set_rearm(1);
        sys.gc_rearm_tick(Ps::ZERO);
        assert_eq!(sys.unit_health(), [false; 4], "a probing unit is not dead");
        assert!(sys.device.as_ref().unwrap().probing_units()[0]);
        ctl.decide(&mut sys, None, None, GcKind::Minor, Ps::ZERO);
        assert_eq!(sys.offload, OffloadMask::all(), "probe passes the clamp");
        assert_eq!(ctl.journal.decisions[1].unit_dead, [false; 4]);
        assert_eq!(sys.recovery.rearmed, [1, 0, 0, 0]);
    }

    #[test]
    fn journal_json_round_trips_and_counts_switches() {
        let mut j = DecisionJournal::default();
        for (i, mask) in [OffloadMask::all(), OffloadMask::all(), OffloadMask::none()]
            .into_iter()
            .enumerate()
        {
            j.decisions.push(Decision {
                seq: i as u64,
                kind: GcKind::Minor,
                policy: "census",
                requested: mask,
                chosen: mask,
                unit_dead: [false; 4],
                survivor_bytes: Some(100.0),
                dead_fraction: Some(0.5),
                predicted: Some(Prediction { host_copy_instr: 10, dispatch_instr: 3 }),
                realized_pause: Some(Ps(42)),
            });
        }
        assert_eq!(j.mask_switches(), 1);
        let json = j.to_json();
        let back = Json::parse(&json.to_string()).expect("journal JSON parses");
        assert_eq!(back.get("policy").and_then(Json::as_str), Some("census"));
        assert_eq!(back.get("decisions").and_then(Json::as_arr).map(|a| a.len()), Some(3));
    }
}
