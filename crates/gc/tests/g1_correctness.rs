//! G1-lite mixed collections preserve the reachable graph, reclaim
//! mostly-dead regions, and exercise every Charon primitive (Table 1's
//! G1 row).

use charon_core::PrimType;
use charon_gc::collector::Collector;
use charon_gc::g1lite::{g1_mixed_collect, G1_REGION_WORDS};
use charon_gc::system::System;
use charon_gc::threads::GcThreads;
use charon_gc::verify::graph_signature;
use charon_heap::heap::{HeapConfig, JavaHeap};
use charon_heap::klass::{KlassId, KlassKind};
use charon_heap::VAddr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn build(sys: System) -> (JavaHeap, Collector, KlassId) {
    let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(24 << 20));
    let node = heap.klasses_mut().register("Node", KlassKind::Instance, 4, vec![0, 1]);
    let bytes = heap.klasses_mut().register_array("byte[]", KlassKind::TypeArray);
    let mut gc = Collector::new(sys, &heap, 8);
    // Fill old with a mix of soon-dead and kept objects, then drop most
    // roots so many regions go mostly-garbage.
    let mut rng = StdRng::seed_from_u64(7);
    let mut roots = Vec::new();
    for _ in 0..6000 {
        let a = gc.alloc(&mut heap, bytes, rng.gen_range(16..256)).unwrap();
        let n = gc.alloc(&mut heap, node, 0).unwrap();
        heap.store_ref_with_barrier(heap.ref_slots(n)[0], a);
        roots.push(heap.add_root(n));
    }
    gc.major_gc(&mut heap); // promote everything into old
    for (i, &r) in roots.iter().enumerate() {
        if i % 5 != 0 {
            heap.set_root(r, VAddr::NULL);
        }
    }
    (heap, gc, bytes)
}

#[test]
fn g1_preserves_graph_and_reclaims_garbage() {
    let (mut heap, mut gc, filler) = build(System::ddr4());
    let (sig, before) = graph_signature(&heap).expect("heap graph verifies");
    let used_before = heap.old().used_bytes();

    let mut threads = GcThreads::new(8, gc.now);
    let (bd, stats, free) = g1_mixed_collect(&mut gc.sys, &mut heap, &mut threads, filler, &mut charon_gc::freelist::FreeStore::new());

    let (sig2, after) = graph_signature(&heap).expect("heap graph verifies");
    assert_eq!(sig, sig2, "G1 evacuation corrupted the graph");
    assert_eq!(before.objects, after.objects);
    assert!(stats.collection_set > 0, "mostly-dead regions must be selected");
    assert!(stats.reclaimed_bytes > 0);
    assert!(stats.remset_updates > 0, "references into the cset must be rewritten");
    // Victim extents are object-aligned interiors of mostly-dead regions;
    // all of them together account for the evacuated + reclaimed bytes.
    assert!(free.iter().all(|r| r.words() >= 2));
    let freed: u64 = free.iter().map(|r| r.bytes()).sum();
    assert_eq!(freed, stats.reclaimed_bytes + stats.evacuated_bytes);
    assert!(free.iter().any(|r| r.words() >= G1_REGION_WORDS / 2), "some large extents reclaimed");
    assert!(bd.get(charon_gc::Bucket::Copy).0 > 0);
    assert!(bd.get(charon_gc::Bucket::BitmapCount).0 > 0);
    // Evacuation appends to old, so occupancy grows transiently; the free
    // list is what a region allocator would hand back.
    let _ = used_before;
}

#[test]
fn g1_exercises_all_primitives_under_charon() {
    let (mut heap, mut gc, filler) = build(System::charon());
    let before = gc.sys.device.as_ref().unwrap().stats().clone();
    let mut threads = GcThreads::new(8, gc.now);
    let (_, stats, _) = g1_mixed_collect(&mut gc.sys, &mut heap, &mut threads, filler, &mut charon_gc::freelist::FreeStore::new());
    let after = gc.sys.device.as_ref().unwrap().stats().clone();
    assert!(stats.collection_set > 0);
    for p in [PrimType::Copy, PrimType::ScanPush, PrimType::BitmapCount] {
        assert!(after.prim(p).offloads > before.prim(p).offloads, "G1 must exercise {p} (Table 1 row)");
    }
}

#[test]
fn g1_after_collection_heap_still_collectable() {
    let (mut heap, mut gc, filler) = build(System::ddr4());
    let mut threads = GcThreads::new(4, gc.now);
    let _ = g1_mixed_collect(&mut gc.sys, &mut heap, &mut threads, filler, &mut charon_gc::freelist::FreeStore::new());
    let (sig, _) = graph_signature(&heap).expect("heap graph verifies");
    // A following full compaction must cope with filler regions.
    gc.major_gc(&mut heap);
    let (sig2, _) = graph_signature(&heap).expect("heap graph verifies");
    assert_eq!(sig, sig2, "MajorGC after G1 corrupted the graph");
    let violations = charon_heap::check::verify_heap(&heap);
    assert!(violations.is_empty(), "heap invariants violated after G1+Major: {violations:?}");
}
