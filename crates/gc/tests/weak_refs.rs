//! `java.lang.ref`-style weak-reference semantics (instanceRefKlass, §4.4's
//! fifteen klass kinds): referents reachable only through Reference objects
//! are cleared by the collector; strongly-reachable referents survive and
//! the Reference follows them across moves.

use charon_gc::collector::Collector;
use charon_gc::system::System;
use charon_heap::heap::{HeapConfig, JavaHeap};
use charon_heap::klass::{KlassId, KlassKind};
use charon_heap::VAddr;

struct Fx {
    heap: JavaHeap,
    gc: Collector,
    weak: KlassId,
    point: KlassId,
}

fn fx(sys: System) -> Fx {
    let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(4 << 20));
    // Reference layout: payload word 0 = referent (weak), word 1 = next.
    let weak = heap
        .klasses_mut()
        .register("WeakReference", KlassKind::InstanceRef, 3, vec![0, 1]);
    let point = heap.klasses_mut().register("Point", KlassKind::Instance, 2, vec![]);
    let gc = Collector::new(sys, &heap, 4);
    Fx { heap, gc, weak, point }
}

#[test]
fn weakly_reachable_referent_is_cleared_by_minor_gc() {
    let Fx { mut heap, mut gc, weak, point } = fx(System::ddr4());
    let target = gc.alloc(&mut heap, point, 0).unwrap();
    let w = gc.alloc(&mut heap, weak, 0).unwrap();
    heap.store_ref_with_barrier(heap.ref_slots(w)[0], target);
    heap.add_root(w); // only the Reference is rooted

    let ev = gc.minor_gc(&mut heap);
    assert_eq!(ev.minor.unwrap().cleared_weak_refs, 1);
    let w = heap.read_root(0);
    assert_eq!(heap.read_ref(heap.ref_slots(w)[0]), VAddr::NULL, "referent must be cleared");
}

#[test]
fn strongly_reachable_referent_survives_and_is_updated() {
    let Fx { mut heap, mut gc, weak, point } = fx(System::ddr4());
    let target = gc.alloc(&mut heap, point, 0).unwrap();
    heap.mem.write_word(target.add_words(2), 0xFEED);
    let w = gc.alloc(&mut heap, weak, 0).unwrap();
    heap.store_ref_with_barrier(heap.ref_slots(w)[0], target);
    heap.add_root(w);
    heap.add_root(target); // strong path too

    let ev = gc.minor_gc(&mut heap);
    assert_eq!(ev.minor.unwrap().cleared_weak_refs, 0);
    let w = heap.read_root(0);
    let referent = heap.read_ref(heap.ref_slots(w)[0]);
    assert!(!referent.is_null());
    assert_eq!(referent, heap.read_root(1), "Reference must follow the moved referent");
    assert_eq!(heap.mem.read_word(referent.add_words(2)), 0xFEED);
}

#[test]
fn major_gc_clears_weak_only_referents() {
    let Fx { mut heap, mut gc, weak, point } = fx(System::ddr4());
    let target = gc.alloc(&mut heap, point, 0).unwrap();
    let strong = gc.alloc(&mut heap, point, 0).unwrap();
    let w1 = gc.alloc(&mut heap, weak, 0).unwrap();
    heap.store_ref_with_barrier(heap.ref_slots(w1)[0], target);
    let w2 = gc.alloc(&mut heap, weak, 0).unwrap();
    heap.store_ref_with_barrier(heap.ref_slots(w2)[0], strong);
    heap.add_root(w1);
    heap.add_root(w2);
    heap.add_root(strong);

    let ev = gc.major_gc(&mut heap);
    assert_eq!(ev.major.unwrap().cleared_weak_refs, 1);
    let w1 = heap.read_root(0);
    let w2 = heap.read_root(1);
    assert_eq!(heap.read_ref(heap.ref_slots(w1)[0]), VAddr::NULL);
    assert_eq!(heap.read_ref(heap.ref_slots(w2)[0]), heap.read_root(2));
}

#[test]
fn non_referent_fields_of_references_stay_strong() {
    let Fx { mut heap, mut gc, weak, point } = fx(System::ddr4());
    let target = gc.alloc(&mut heap, point, 0).unwrap();
    let next = gc.alloc(&mut heap, point, 0).unwrap();
    heap.mem.write_word(next.add_words(2), 0xCAFE);
    let w = gc.alloc(&mut heap, weak, 0).unwrap();
    let slots = heap.ref_slots(w);
    heap.store_ref_with_barrier(slots[0], target);
    heap.store_ref_with_barrier(slots[1], next); // "next" link is strong
    heap.add_root(w);

    gc.minor_gc(&mut heap);
    let w = heap.read_root(0);
    let slots = heap.ref_slots(w);
    assert_eq!(heap.read_ref(slots[0]), VAddr::NULL, "weak referent cleared");
    let kept = heap.read_ref(slots[1]);
    assert!(!kept.is_null(), "strong field kept its target alive");
    assert_eq!(heap.mem.read_word(kept.add_words(2)), 0xCAFE);
}

#[test]
fn behaviour_is_identical_across_backends() {
    for sys in [System::ddr4(), System::hmc(), System::charon(), System::ideal()] {
        let Fx { mut heap, mut gc, weak, point } = fx(sys);
        let target = gc.alloc(&mut heap, point, 0).unwrap();
        let w = gc.alloc(&mut heap, weak, 0).unwrap();
        heap.store_ref_with_barrier(heap.ref_slots(w)[0], target);
        heap.add_root(w);
        gc.minor_gc(&mut heap);
        gc.major_gc(&mut heap);
        let w = heap.read_root(0);
        assert_eq!(heap.read_ref(heap.ref_slots(w)[0]), VAddr::NULL);
    }
}

#[test]
fn old_reference_to_young_referent_via_card_table() {
    let Fx { mut heap, mut gc, weak, point } = fx(System::ddr4());
    // Promote the Reference object to old.
    let w = gc.alloc(&mut heap, weak, 0).unwrap();
    heap.add_root(w);
    for _ in 0..heap.config().tenuring_threshold + 1 {
        gc.minor_gc(&mut heap);
    }
    let w = heap.read_root(0);
    assert!(heap.in_old(w));
    // Point its referent at a fresh young object (dirties the card).
    let target = gc.alloc(&mut heap, point, 0).unwrap();
    heap.store_ref_with_barrier(heap.ref_slots(w)[0], target);

    let ev = gc.minor_gc(&mut heap);
    // Weakly-reachable only → cleared, even though a dirty card found it.
    assert_eq!(ev.minor.unwrap().cleared_weak_refs, 1);
    let w = heap.read_root(0);
    assert_eq!(heap.read_ref(heap.ref_slots(w)[0]), VAddr::NULL);
}
