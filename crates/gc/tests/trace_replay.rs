//! Trace-driven mode: a recorded collection replays to (nearly) the live
//! pause time on the same configuration, and re-times meaningfully on
//! others.

use charon_gc::collector::Collector;
use charon_gc::system::System;
use charon_gc::trace::replay;
use charon_heap::heap::{HeapConfig, JavaHeap};
use charon_heap::klass::KlassKind;
use charon_heap::VAddr;

fn record_one(sys: System) -> (charon_gc::trace::GcTrace, charon_sim::time::Ps) {
    let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(12 << 20));
    let k = heap.klasses_mut().register_array("byte[]", KlassKind::TypeArray);
    let node = heap.klasses_mut().register("Node", KlassKind::Instance, 4, vec![0, 1]);
    let mut sys = sys;
    sys.record_traces = true;
    let mut gc = Collector::new(sys, &heap, 8);
    for i in 0..2500u32 {
        let a = gc.alloc(&mut heap, k, 120 + (i % 700)).unwrap();
        let n = gc.alloc(&mut heap, node, 0).unwrap();
        heap.store_ref_with_barrier(heap.ref_slots(n)[0], a);
        if i % 3 == 0 {
            heap.add_root(n);
        }
        if heap.root_count() > 300 {
            heap.set_root(heap.root_count() - 300, VAddr::NULL);
        }
    }
    gc.minor_gc(&mut heap);
    let live_wall = gc.events.last().unwrap().wall;
    let trace = gc.sys.traces.last().unwrap().clone();
    (trace, live_wall)
}

#[test]
fn replay_on_same_config_approximates_live_run() {
    let (trace, live) = record_one(System::ddr4());
    assert!(trace.primitive_count() > 100, "trace too thin: {}", trace.primitive_count());
    let (replayed, bd) = replay(&trace, &mut System::ddr4(), 8);
    // Replay starts from a cold machine and merges host buckets, so exact
    // equality is not expected — but it must land in the same ballpark.
    let ratio = replayed.0 as f64 / live.0 as f64;
    assert!((0.5..2.0).contains(&ratio), "replayed {replayed} vs live {live} (ratio {ratio:.2})");
    assert!(bd.get(charon_gc::Bucket::Copy).0 > 0);
}

#[test]
fn replay_recovers_the_platform_ordering() {
    // One trace, three machines: the cross-platform ordering of Fig. 12
    // re-emerges without re-running the collector.
    let (trace, _) = record_one(System::ddr4());
    let (t_ddr4, _) = replay(&trace, &mut System::ddr4(), 8);
    let (t_charon, _) = replay(&trace, &mut System::charon(), 8);
    let (t_ideal, _) = replay(&trace, &mut System::ideal(), 8);
    assert!(t_charon < t_ddr4, "Charon replay ({t_charon}) must beat DDR4 ({t_ddr4})");
    assert!(t_ideal < t_charon, "Ideal replay must lower-bound Charon");
}

#[test]
fn traces_record_one_entry_per_collection() {
    let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(8 << 20));
    let k = heap.klasses_mut().register_array("byte[]", KlassKind::TypeArray);
    let mut sys = System::ddr4();
    sys.record_traces = true;
    let mut gc = Collector::new(sys, &heap, 4);
    for _ in 0..200 {
        let a = gc.alloc(&mut heap, k, 64).unwrap();
        heap.add_root(a);
    }
    gc.minor_gc(&mut heap);
    gc.major_gc(&mut heap);
    gc.minor_gc(&mut heap);
    assert_eq!(gc.sys.traces.len(), 3 + gc.events.len() - 3 /* alloc-triggered ones too */);
    assert_eq!(gc.sys.traces.len(), gc.events.len());
    assert!(gc.sys.traces.iter().all(|t| !t.is_empty()));
}

#[test]
fn recording_does_not_change_timing() {
    let run = |record: bool| {
        let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(8 << 20));
        let k = heap.klasses_mut().register_array("byte[]", KlassKind::TypeArray);
        let mut sys = System::charon();
        sys.record_traces = record;
        let mut gc = Collector::new(sys, &heap, 8);
        for _ in 0..1500 {
            let a = gc.alloc(&mut heap, k, 150).unwrap();
            heap.add_root(a);
        }
        gc.minor_gc(&mut heap);
        gc.gc_total_time()
    };
    assert_eq!(run(false), run(true), "recording must be timing-transparent");
}

/// Builds the minor+major scenario at `gc_threads` threads on `sys`,
/// returning the collector (with traces recorded) after both collections.
fn record_minor_and_major(mut sys: System, gc_threads: usize) -> (Collector, JavaHeap) {
    let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(4 << 20));
    let k = heap.klasses_mut().register_array("byte[]", KlassKind::TypeArray);
    sys.record_traces = true;
    let mut gc = Collector::new(sys, &heap, gc_threads);
    for _ in 0..1500u32 {
        let a = gc.alloc(&mut heap, k, 100).unwrap();
        heap.add_root(a);
    }
    gc.minor_gc(&mut heap);
    for i in 0..heap.root_count() / 2 {
        heap.set_root(i * 2, VAddr::NULL);
    }
    gc.major_gc(&mut heap);
    (gc, heap)
}

/// Replay fidelity (the differential contract): a recorded collection,
/// replayed at its live start time on a fresh system of the SAME
/// configuration, reproduces the live wall time exactly at
/// `gc_threads == 1`. The traces replay sequentially on ONE system so the
/// cache and epoch-meter state carries across collections exactly as it
/// did live; `Phase` ops re-perform the recorded flush kind, which is what
/// keeps the cache state in sync.
fn assert_live_equals_replay(make: fn() -> System) {
    let (gc, _heap) = record_minor_and_major(make(), 1);
    assert_eq!(gc.sys.traces.len(), gc.events.len());
    assert!(gc.events.len() >= 2, "scenario must trigger both collections");

    // A fresh same-config machine: built through a Collector on an
    // identical heap so the device's initialize() intrinsic runs with the
    // same global addresses.
    let replay_heap = JavaHeap::new(HeapConfig::with_heap_bytes(4 << 20));
    let mut replay_sys = Collector::new(make(), &replay_heap, 1).sys;
    for (trace, event) in gc.sys.traces.iter().zip(&gc.events) {
        let (wall, bd) = charon_gc::trace::replay_at(trace, &mut replay_sys, 1, event.start);
        assert_eq!(
            wall, event.wall,
            "replayed wall {wall} != live wall {} for the {} at {}",
            event.wall, event.kind, event.start
        );
        assert_eq!(bd.total(), event.breakdown.total(), "bucket totals must replay identically");
    }
}

#[test]
fn live_equals_replay_single_thread_ddr4() {
    assert_live_equals_replay(System::ddr4);
}

#[test]
fn live_equals_replay_single_thread_hmc() {
    assert_live_equals_replay(System::hmc);
}

#[test]
fn live_equals_replay_single_thread_charon() {
    assert_live_equals_replay(System::charon);
}

#[test]
fn live_equals_replay_single_thread_cpu_side() {
    assert_live_equals_replay(System::cpu_side);
}

#[test]
fn phase_ops_record_the_flush_kind() {
    use charon_gc::trace::{FlushKind, TraceOp};
    let (gc, _heap) = record_minor_and_major(System::charon(), 1);
    let minor = &gc.sys.traces[0];
    // The minor prologue under Charon is a bulk host-cache flush (the
    // very first GC flushes cold caches, so the line count may be zero —
    // the recorded *kind* is what replay needs).
    assert!(
        minor
            .ops
            .iter()
            .any(|o| matches!(o, TraceOp::Phase { flush: FlushKind::HostCaches { .. } })),
        "minor trace must record the prologue host-cache flush"
    );
    let major = gc.sys.traces.last().unwrap();
    assert!(
        major
            .ops
            .iter()
            .any(|o| matches!(o, TraceOp::Phase { flush: FlushKind::BitmapCache { .. } })),
        "major trace must record bitmap-cache flushes"
    );
    assert!(
        major.ops.iter().any(|o| matches!(o, TraceOp::StreamClear { .. })),
        "major trace must record the epilogue stream clears"
    );
}
