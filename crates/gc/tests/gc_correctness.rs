//! End-to-end correctness of both collections: the reachable object graph
//! must survive MinorGC and MajorGC bit-for-bit (modulo addresses), under
//! every backend, and the heap must end in a consistent state.

use charon_gc::collector::{Collector, GcKind};
use charon_gc::system::System;
use charon_gc::verify::{assert_headers_clean, graph_signature};
use charon_heap::heap::{HeapConfig, JavaHeap};
use charon_heap::klass::{KlassId, KlassKind};
use charon_heap::VAddr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Fixture {
    heap: JavaHeap,
    point: KlassId,
    node: KlassId,
    arr: KlassId,
    bytes: KlassId,
}

fn fixture(heap_bytes: u64) -> Fixture {
    let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(heap_bytes));
    let point = heap.klasses_mut().register("Point", KlassKind::Instance, 4, vec![0, 1]);
    let node = heap.klasses_mut().register("Node", KlassKind::Instance, 6, vec![0, 1, 2]);
    let arr = heap.klasses_mut().register_array("Object[]", KlassKind::ObjArray);
    let bytes = heap.klasses_mut().register_array("byte[]", KlassKind::TypeArray);
    Fixture { heap, point, node, arr, bytes }
}

/// Builds a random object graph with long- and short-lived objects,
/// cross-generation references, and cycles. Returns live handles.
fn populate(fx: &mut Fixture, gc: &mut Collector, seed: u64, n: usize) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut roots = Vec::new();
    let mut live: Vec<usize> = Vec::new();

    for i in 0..n {
        let k = match rng.gen_range(0..4) {
            0 => fx.point,
            1 => fx.node,
            2 => fx.arr,
            _ => fx.bytes,
        };
        let len = match fx.heap.klasses().get(k).kind() {
            KlassKind::ObjArray => rng.gen_range(1..12),
            KlassKind::TypeArray => rng.gen_range(1..64),
            _ => 0,
        };
        let a = gc.alloc(&mut fx.heap, k, len).expect("no OOM in fixture");
        // Fill type arrays with recognizable payload.
        if fx.heap.klasses().get(k).kind() == KlassKind::TypeArray {
            for w in 0..len as u64 {
                fx.heap.mem.write_word(a.add_words(2 + w), 0xA5A5_0000 + i as u64 + w);
            }
        }
        // Wire some references to previously allocated live objects,
        // re-reading their current addresses through the roots (a GC may
        // have moved them), through the write barrier as the mutator would.
        let slots = fx.heap.ref_slots(a);
        for s in slots {
            if !live.is_empty() && rng.gen_bool(0.7) {
                let target = fx.heap.read_root(live[rng.gen_range(0..live.len())]);
                if !target.is_null() {
                    fx.heap.store_ref_with_barrier(s, target);
                }
            }
        }
        // A third of objects stay reachable.
        if rng.gen_bool(0.33) {
            let idx = fx.heap.add_root(a);
            roots.push(idx);
            live.push(idx);
        }
        // Occasionally drop a root (objects die).
        if !roots.is_empty() && rng.gen_bool(0.05) {
            let idx = roots[rng.gen_range(0..roots.len())];
            fx.heap.set_root(idx, VAddr::NULL);
        }
    }
    roots
}

fn run_backend(sys: System, seed: u64) -> (u64, u64, usize, usize) {
    let mut fx = fixture(8 << 20);
    let mut gc = Collector::new(sys, &fx.heap, 8);
    populate(&mut fx, &mut gc, seed, 4000);
    let (sig_before, stats_before) = graph_signature(&fx.heap).expect("heap graph verifies");

    gc.minor_gc(&mut fx.heap);
    let (sig_after_minor, _) = graph_signature(&fx.heap).expect("heap graph verifies");
    assert_eq!(sig_before, sig_after_minor, "MinorGC changed the reachable graph");
    assert_eq!(fx.heap.eden().used_bytes(), 0, "eden must be empty after MinorGC");

    gc.major_gc(&mut fx.heap);
    let (sig_after_major, stats_after) = graph_signature(&fx.heap).expect("heap graph verifies");
    assert_eq!(sig_before, sig_after_major, "MajorGC changed the reachable graph");
    assert_eq!(stats_before.objects, stats_after.objects);
    assert_eq!(stats_before.bytes, stats_after.bytes);
    assert_eq!(fx.heap.young_used_bytes(), 0, "young must be empty after MajorGC");
    assert_eq!(fx.heap.old().used_bytes(), stats_after.bytes, "old must hold exactly the live bytes after compaction");
    assert_headers_clean(&fx.heap);
    let violations = charon_heap::check::verify_heap(&fx.heap);
    assert!(violations.is_empty(), "heap invariants violated after GC: {violations:?}");

    (sig_after_major, stats_after.bytes, gc.count(GcKind::Minor), gc.count(GcKind::Major))
}

#[test]
fn graph_survives_gc_on_ddr4() {
    run_backend(System::ddr4(), 1);
}

#[test]
fn graph_survives_gc_on_hmc() {
    run_backend(System::hmc(), 1);
}

#[test]
fn graph_survives_gc_on_charon() {
    run_backend(System::charon(), 1);
}

#[test]
fn graph_survives_gc_on_ideal() {
    run_backend(System::ideal(), 1);
}

#[test]
fn graph_survives_gc_on_cpu_side() {
    run_backend(System::cpu_side(), 1);
}

#[test]
fn all_backends_agree_functionally() {
    // Same seed → identical final graph signature and GC counts on every
    // backend: timing must never affect semantics.
    let results: Vec<_> = [System::ddr4(), System::hmc(), System::charon(), System::ideal(), System::cpu_side()]
        .into_iter()
        .map(|s| run_backend(s, 42))
        .collect();
    for r in &results[1..] {
        assert_eq!(r, &results[0], "backend changed functional behaviour");
    }
}

#[test]
fn repeated_collections_are_stable() {
    let mut fx = fixture(8 << 20);
    let mut gc = Collector::new(System::ddr4(), &fx.heap, 4);
    populate(&mut fx, &mut gc, 7, 3000);
    let (sig, _) = graph_signature(&fx.heap).expect("heap graph verifies");
    for i in 0..4 {
        if i % 2 == 0 {
            gc.minor_gc(&mut fx.heap);
        } else {
            gc.major_gc(&mut fx.heap);
        }
        let (s, _) = graph_signature(&fx.heap).expect("heap graph verifies");
        assert_eq!(s, sig, "iteration {i} corrupted the graph");
    }
}

#[test]
fn survivors_age_and_promote() {
    let mut fx = fixture(8 << 20);
    let mut gc = Collector::new(System::ddr4(), &fx.heap, 2);
    // One long-lived object.
    let a = gc.alloc(&mut fx.heap, fx.point, 0).unwrap();
    fx.heap.add_root(a);
    let threshold = fx.heap.config().tenuring_threshold;
    let mut promoted_at = None;
    for i in 0..(threshold as usize + 2) {
        gc.minor_gc(&mut fx.heap);
        let cur = fx.heap.read_root(0);
        if fx.heap.in_old(cur) {
            promoted_at = Some(i);
            break;
        }
        assert!(fx.heap.in_young(cur), "object lost");
    }
    let at = promoted_at.expect("object never promoted despite surviving past the threshold");
    assert!(at + 1 >= threshold as usize, "promoted too early: survived only {at} collections");
    // After promotion, further minor GCs leave it in place.
    let fixed = fx.heap.read_root(0);
    gc.minor_gc(&mut fx.heap);
    assert_eq!(fx.heap.read_root(0), fixed);
}

#[test]
fn old_to_young_references_survive_via_card_table() {
    let mut fx = fixture(8 << 20);
    let mut gc = Collector::new(System::ddr4(), &fx.heap, 2);
    // An old holder pointing at a young object that is otherwise
    // unreachable: only the card table can save it.
    let holder = gc.alloc(&mut fx.heap, fx.node, 0).unwrap();
    fx.heap.add_root(holder);
    for _ in 0..fx.heap.config().tenuring_threshold + 1 {
        gc.minor_gc(&mut fx.heap);
    }
    let holder = fx.heap.read_root(0);
    assert!(fx.heap.in_old(holder), "holder must be promoted by now");

    let young = gc.alloc(&mut fx.heap, fx.bytes, 8).unwrap();
    for w in 0..8 {
        fx.heap.mem.write_word(young.add_words(2 + w), 0xBEEF + w);
    }
    let slot = fx.heap.ref_slots(holder)[0];
    fx.heap.store_ref_with_barrier(slot, young);
    let (sig, _) = graph_signature(&fx.heap).expect("heap graph verifies");

    let ev = gc.minor_gc(&mut fx.heap);
    assert!(ev.minor.unwrap().dirty_cards > 0, "the write barrier must have dirtied a card");
    let (sig2, _) = graph_signature(&fx.heap).expect("heap graph verifies");
    assert_eq!(sig, sig2, "old-to-young referent lost or corrupted");
    let kept = fx.heap.read_ref(fx.heap.ref_slots(fx.heap.read_root(0))[0]);
    assert!(!kept.is_null());
    assert_eq!(fx.heap.mem.read_word(kept.add_words(2)), 0xBEEF);
}

#[test]
fn dead_objects_are_reclaimed() {
    let mut fx = fixture(8 << 20);
    let mut gc = Collector::new(System::ddr4(), &fx.heap, 2);
    // Allocate garbage: nothing rooted.
    for _ in 0..2000 {
        gc.alloc(&mut fx.heap, fx.bytes, 32).unwrap();
    }
    let one = gc.alloc(&mut fx.heap, fx.point, 0).unwrap();
    fx.heap.add_root(one);
    gc.major_gc(&mut fx.heap);
    // Only the rooted object survives.
    assert_eq!(fx.heap.old().used_bytes(), 6 * 8);
    assert_eq!(fx.heap.young_used_bytes(), 0);
}

#[test]
fn charon_is_faster_than_ddr4_on_gc() {
    // Paper regime: heap well beyond the 8 MB LLC, big-data-like objects
    // (KB-scale arrays). Tiny cache-resident heaps are exactly where §3.3
    // says offloading does NOT pay.
    let mk = |sys| {
        let mut fx = fixture(48 << 20);
        let mut gc = Collector::new(sys, &fx.heap, 8);
        let mut rng = StdRng::seed_from_u64(99);
        let mut roots = Vec::new();
        for _ in 0..1500 {
            let len = rng.gen_range(256..2048);
            let a = gc.alloc(&mut fx.heap, fx.bytes, len).unwrap();
            if rng.gen_bool(0.4) {
                roots.push(fx.heap.add_root(a));
            }
        }
        gc.minor_gc(&mut fx.heap);
        gc.major_gc(&mut fx.heap);
        gc.gc_total_time()
    };
    let t_ddr4 = mk(System::ddr4());
    let t_charon = mk(System::charon());
    let t_ideal = mk(System::ideal());
    assert!(t_charon.0 as f64 <= 0.8 * t_ddr4.0 as f64, "Charon ({t_charon}) should clearly beat DDR4 ({t_ddr4})");
    assert!(t_ideal < t_charon, "Ideal must lower-bound Charon");
}

#[test]
fn breakdowns_cover_all_phases() {
    use charon_gc::breakdown::Bucket;
    let mut fx = fixture(8 << 20);
    let mut gc = Collector::new(System::ddr4(), &fx.heap, 8);
    populate(&mut fx, &mut gc, 5, 5000);
    gc.minor_gc(&mut fx.heap);
    gc.major_gc(&mut fx.heap);
    // Force a populated old generation with old-to-young references so the
    // card-table Search phase has work.
    gc.major_gc(&mut fx.heap);
    let old_holder = (0..fx.heap.root_count())
        .map(|i| fx.heap.read_root(i))
        .find(|&r| !r.is_null() && fx.heap.in_old(r) && !fx.heap.ref_slots(r).is_empty())
        .expect("an old object with reference slots");
    let young = gc.alloc(&mut fx.heap, fx.point, 0).unwrap();
    fx.heap.store_ref_with_barrier(fx.heap.ref_slots(old_holder)[0], young);
    gc.minor_gc(&mut fx.heap);

    let minor = gc.breakdown_by_kind(GcKind::Minor);
    let major = gc.breakdown_by_kind(GcKind::Major);
    for b in [Bucket::Copy, Bucket::ScanPush, Bucket::Pop, Bucket::Push, Bucket::Other] {
        assert!(minor.get(b).0 > 0, "minor bucket {b} empty");
    }
    assert!(minor.get(Bucket::Search).0 > 0, "card search must appear");
    for b in [Bucket::Copy, Bucket::ScanPush, Bucket::BitmapCount, Bucket::Pop, Bucket::Other] {
        assert!(major.get(b).0 > 0, "major bucket {b} empty");
    }
    assert!(minor.offloadable_fraction() > 0.3, "offloadable share unexpectedly low");
}

#[test]
fn mark_sweep_preserves_graph_and_frees_old_garbage() {
    use charon_gc::marksweep::mark_sweep_old;
    use charon_gc::threads::GcThreads;
    let mut fx = fixture(8 << 20);
    let mut gc = Collector::new(System::ddr4(), &fx.heap, 4);
    populate(&mut fx, &mut gc, 11, 4000);
    // Promote a working set into old, then drop some roots.
    gc.major_gc(&mut fx.heap);
    for i in 0..fx.heap.root_count() {
        if i % 3 == 0 {
            fx.heap.set_root(i, VAddr::NULL);
        }
    }
    let (sig, _) = graph_signature(&fx.heap).expect("heap graph verifies");
    let mut threads = GcThreads::new(4, gc.now);
    let (_bd, st, free) = mark_sweep_old(&mut gc.sys, &mut fx.heap, &mut threads, fx.bytes);
    let (sig2, _) = graph_signature(&fx.heap).expect("heap graph verifies");
    assert_eq!(sig, sig2, "mark-sweep corrupted the graph");
    assert!(st.freed_bytes > 0, "dropping roots must free old garbage");
    assert_eq!(free.iter().map(|&(_, w)| w * 8).sum::<u64>(), st.freed_bytes);
    // The old space stays parsable after filler insertion.
    let walked: u64 = fx.heap.walk_objects(fx.heap.old().start(), fx.heap.old().top()).count() as u64;
    assert!(walked >= st.free_chunks);
}
