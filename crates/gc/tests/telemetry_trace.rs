//! The exported Chrome trace tells the same story as the GC log: one
//! collection span per `GcEvent`, in the same order and at the same
//! simulated times, with the phase spans nested inside their collection.

use charon_gc::collector::Collector;
use charon_gc::gclog::{render_run, HeapSnapshot};
use charon_gc::system::System;
use charon_gc::GcKind;
use charon_heap::heap::{HeapConfig, JavaHeap};
use charon_heap::klass::KlassKind;
use charon_heap::VAddr;
use charon_sim::json::Json;
use charon_sim::telemetry::{chrome_trace, Event, Telemetry};

/// Triggers several minor collections and one explicit major, journaling
/// everything; returns the collector plus per-event heap snapshots.
fn instrumented_run(telemetry: &Telemetry) -> (Collector, Vec<HeapSnapshot>) {
    let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(8 << 20));
    let k = heap.klasses_mut().register_array("byte[]", KlassKind::TypeArray);
    let mut sys = System::charon();
    sys.set_telemetry(telemetry.clone());
    let mut gc = Collector::new(sys, &heap, 4);
    let mut snaps = Vec::new();
    let mut events_seen = 0;
    for i in 0..3000u32 {
        let before = heap.used_bytes();
        let a = gc.alloc(&mut heap, k, 120).unwrap();
        if i % 4 == 0 {
            heap.add_root(a);
        }
        if heap.root_count() > 300 {
            heap.set_root(heap.root_count() - 300, VAddr::NULL);
        }
        while events_seen < gc.events.len() {
            snaps.push(HeapSnapshot::after(&heap, before));
            events_seen += 1;
        }
    }
    let before = heap.used_bytes();
    gc.major_gc(&mut heap);
    snaps.push(HeapSnapshot::after(&heap, before));
    (gc, snaps)
}

#[test]
fn journal_mirrors_the_collector_event_log() {
    let telemetry = Telemetry::enabled();
    let (gc, _snaps) = instrumented_run(&telemetry);
    assert!(gc.events.len() >= 2, "scenario must trigger collections");

    let journaled: Vec<Event> = telemetry
        .events()
        .into_iter()
        .filter(|e| matches!(e, Event::Collection { .. }))
        .collect();
    assert_eq!(journaled.len(), gc.events.len(), "one Collection span per GcEvent");
    for (i, (j, e)) in journaled.iter().zip(&gc.events).enumerate() {
        let Event::Collection { seq, kind, start, end } = j else { unreachable!() };
        assert_eq!(*seq, i as u64);
        assert_eq!(*kind, if e.kind == GcKind::Minor { "minor" } else { "major" });
        assert_eq!(*start, e.start, "collection {i} start");
        assert_eq!(*end, e.start + e.wall, "collection {i} end");
    }

    // Phase spans sit inside their collection, in non-decreasing order.
    for (i, e) in gc.events.iter().enumerate() {
        let phases: Vec<(&'static str, u64, u64)> = telemetry
            .events()
            .iter()
            .filter_map(|ev| match ev {
                Event::Phase { seq, name, start, end } if *seq == i as u64 => Some((*name, start.0, end.0)),
                _ => None,
            })
            .collect();
        assert!(!phases.is_empty(), "collection {i} has no phase spans");
        let names: Vec<&str> = phases.iter().map(|p| p.0).collect();
        let expected: &[&str] = if e.kind == GcKind::Minor {
            &["roots", "cards", "drain", "refs", "epilogue"]
        } else {
            &["mark", "refs", "summary", "adjust", "compact", "epilogue"]
        };
        assert_eq!(names, expected, "collection {i} ({}) phase order", e.kind);
        let lo = e.start.0;
        let hi = (e.start + e.wall).0;
        let mut cursor = lo;
        for (name, s, t) in &phases {
            assert!(*s >= cursor, "phase {name} starts before its predecessor ended");
            assert!(*s <= *t && *t <= hi, "phase {name} [{s}, {t}] escapes [{lo}, {hi}]");
            cursor = *s;
        }
    }
}

#[test]
fn chrome_trace_orders_collections_like_the_gclog() {
    let telemetry = Telemetry::enabled();
    let (gc, snaps) = instrumented_run(&telemetry);
    let log = render_run(&gc.events, &snaps);
    let trace = chrome_trace(&telemetry.events());
    let arr = trace.as_arr().expect("trace is an array");

    // pid 0 / tid 0 "X" spans are the collections, in journal order.
    let spans: Vec<(&str, f64)> = arr
        .iter()
        .filter(|ev| {
            ev.get("pid").and_then(Json::as_u64) == Some(0)
                && ev.get("tid").and_then(Json::as_u64) == Some(0)
                && ev.get("ph").and_then(Json::as_str) == Some("X")
        })
        .map(|ev| (ev.get("name").and_then(Json::as_str).unwrap(), ev.get("ts").and_then(Json::as_f64).unwrap()))
        .collect();
    // Drop the trailing `[pauses …]` summary: only event lines have spans.
    let log_lines: Vec<&str> = log.lines().filter(|l| !l.trim_start().starts_with("[pauses")).collect();
    assert_eq!(spans.len(), log_lines.len(), "one trace span per gclog event line");
    let mut last_ts = f64::NEG_INFINITY;
    for (i, ((name, ts), line)) in spans.iter().zip(&log_lines).enumerate() {
        let expected = if line.contains("[Full GC") { "major gc" } else { "minor gc" };
        assert_eq!(*name, expected, "span {i} disagrees with gclog line {line:?}");
        // Both views are ordered by the same simulated clock.
        assert!(*ts >= last_ts, "span {i} goes backwards in time");
        assert!((*ts - gc.events[i].start.0 as f64 / 1e6).abs() < 1e-9, "span {i} ts");
        last_ts = *ts;
    }
}
