// quick probe via gc test
use charon_gc::system::System;
use charon_heap::VAddr;
use charon_sim::time::Ps;

#[test]
fn bc_micro() {
    for mk in [System::ddr4 as fn() -> System, System::charon] {
        let mut s = mk();
        let label = s.label();
        let mut now = Ps::ZERO;
        // warm
        for i in 0..20000u64 {
            // small adjust-like spans: 32B per map, same region reused 8x
            let base = 0x100_0000 + (i / 8) * 64;
            let spans = [(VAddr(base), 32u64), (VAddr(0x140_0000 + (i / 8) * 64), 32u64)];
            now = s.prim_bitmap_count(0, now, &spans);
        }
        println!("{label}: 20k small BC calls end at {now}");
        // large summary-like spans
        let mut now2 = now;
        for i in 0..2000u64 {
            let spans = [(VAddr(0x100_0000 + i * 64), 64u64), (VAddr(0x140_0000 + i * 64), 64u64)];
            now2 = s.prim_bitmap_count(0, now2, &spans);
        }
        println!("{label}: 2k region BC calls took {}", now2 - now);
    }
}
