//! Host-scanned klass kinds (§4.4's fallback path) must be traced
//! losslessly by every backend.

use charon_gc::collector::Collector;
use charon_gc::system::System;
use charon_gc::verify::graph_signature;
use charon_heap::heap::{HeapConfig, JavaHeap};
use charon_heap::klass::KlassKind;
use charon_heap::VAddr;

#[test]
fn metadata_kinds_survive_collections_via_host_scanning() {
    // Objects of host-scanned kinds must still be traced correctly by
    // every backend — the fallback path (§4.4) is functional, not lossy.
    for sys in [System::ddr4(), System::charon()] {
        let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(4 << 20));
        let method = heap.klasses_mut().register("Method", KlassKind::Method, 8, vec![0, 2]);
        let pool = heap
            .klasses_mut()
            .register("ConstantPool", KlassKind::ConstantPool, 12, vec![0, 5, 9]);
        let data = heap.klasses_mut().register_array("byte[]", KlassKind::TypeArray);
        let mut gc = Collector::new(sys, &heap, 4);

        // A method whose slots chain to a pool and a payload array.
        let d = gc.alloc(&mut heap, data, 16).unwrap();
        heap.mem.write_word(d.add_words(2), 0x1234);
        let p = gc.alloc(&mut heap, pool, 0).unwrap();
        heap.store_ref_with_barrier(heap.ref_slots(p)[1], d);
        let m = gc.alloc(&mut heap, method, 0).unwrap();
        heap.store_ref_with_barrier(heap.ref_slots(m)[0], p);
        heap.add_root(m);

        let (sig, stats) = graph_signature(&heap).expect("heap graph verifies");
        assert_eq!(stats.objects, 3);
        gc.minor_gc(&mut heap);
        gc.major_gc(&mut heap);
        let (sig2, _) = graph_signature(&heap).expect("heap graph verifies");
        assert_eq!(sig, sig2, "host-scanned kinds must be traced losslessly");
        // The payload survived the moves.
        let m = heap.read_root(0);
        let p = heap.read_ref(heap.ref_slots(m)[0]);
        let d = heap.read_ref(heap.ref_slots(p)[1]);
        assert_eq!(heap.mem.read_word(d.add_words(2)), 0x1234);
        assert!(!VAddr::is_null(d));
    }
}
