//! Property tests for the free-list store ([`charon_gc::freelist`]):
//!
//! * free ranges never overlap — not each other, not the blocks the
//!   store handed out,
//! * words are conserved across arbitrary recycle / allocate / coalesce
//!   interleavings (`free + allocated == recycled`, always),
//! * the binary-searched size-class lookup ([`queue_index`]) agrees with
//!   a naive linear oracle (and with `slice::binary_search`) on every
//!   sorted, deduplicated index.

use charon_gc::freelist::{queue_index, FreeStore, MIN_CHUNK_WORDS};
use charon_heap::VAddr;
use proptest::prelude::*;

const BASE_WORD: u64 = 0x0800_0000;

/// A chunk layout: `(gap_words, size_words)` pairs laid out consecutively
/// from `BASE_WORD`. A zero gap makes neighbors address-adjacent, so
/// coalescing has real work to do.
fn layout() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..3, MIN_CHUNK_WORDS..48), 1..32)
}

/// An op sequence: `true` coalesces, `false` allocates `words`.
fn ops() -> impl Strategy<Value = Vec<(bool, u64)>> {
    proptest::collection::vec((proptest::bool::weighted(0.15), MIN_CHUNK_WORDS..40), 0..48)
}

/// Materializes the layout into the store; returns the recycled ranges
/// as `(start_word, size_words)` and the total recycled words.
fn seed(store: &mut FreeStore, chunks: &[(u64, u64)]) -> (Vec<(u64, u64)>, u64) {
    let mut at = BASE_WORD;
    let mut ranges = Vec::new();
    for &(gap, size) in chunks {
        at += gap;
        store.recycle(VAddr(at * 8), size);
        ranges.push((at, size));
        at += size;
    }
    let total = ranges.iter().map(|&(_, w)| w).sum();
    (ranges, total)
}

/// Every free range currently in the store, as `(start_word, size_words)`.
fn free_ranges(store: &FreeStore) -> Vec<(u64, u64)> {
    let mut v: Vec<(u64, u64)> = store
        .queues()
        .iter()
        .flat_map(|q| q.chunks.iter().map(move |&a| (a.0 / 8, q.size_words)))
        .collect();
    v.sort_unstable();
    v
}

/// The naive oracle [`queue_index`] is pinned against.
fn linear_index(sizes: &[u64], words: u64) -> Result<usize, usize> {
    for (i, &s) in sizes.iter().enumerate() {
        if s == words {
            return Ok(i);
        }
        if s > words {
            return Err(i);
        }
    }
    Err(sizes.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn free_ranges_never_overlap(chunks in layout(), plan in ops()) {
        let mut store = FreeStore::new();
        let (_, total) = seed(&mut store, &chunks);
        let mut allocated: Vec<(u64, u64)> = Vec::new();
        for &(do_coalesce, words) in &plan {
            if do_coalesce {
                store.coalesce();
            } else if let Some((addr, _rem)) = store.allocate(words) {
                allocated.push((addr.0 / 8, words));
            }
            // Free ranges and handed-out blocks together tile a subset of
            // the seeded region without any pair intersecting.
            let mut all = free_ranges(&store);
            all.extend(allocated.iter().copied());
            all.sort_unstable();
            for w in all.windows(2) {
                let ((a, aw), (b, _)) = (w[0], w[1]);
                prop_assert!(a + aw <= b, "ranges overlap: {:?} then {:?}", w[0], w[1]);
            }
            for &(a, w) in &all {
                prop_assert!(a >= BASE_WORD && a + w <= BASE_WORD + total + chunks.len() as u64 * 3,
                    "range ({a}, {w}) escaped the seeded region");
            }
        }
    }

    #[test]
    fn words_are_conserved_across_recycle_allocate_coalesce(chunks in layout(), plan in ops()) {
        let mut store = FreeStore::new();
        let (_, total) = seed(&mut store, &chunks);
        prop_assert_eq!(store.free_words(), total, "recycle accounts every seeded word");
        let mut allocated_words = 0u64;
        for &(do_coalesce, words) in &plan {
            if do_coalesce {
                let before = store.free_words();
                store.coalesce();
                prop_assert_eq!(store.free_words(), before, "coalescing moves words, never makes or loses them");
            } else if store.allocate(words).is_some() {
                allocated_words += words;
            }
            prop_assert_eq!(store.free_words() + allocated_words, total);
            // The counter is never out of sync with the queues themselves.
            let by_queue: u64 = store.queues().iter().map(|q| q.size_words * q.chunks.len() as u64).sum();
            prop_assert_eq!(store.free_words(), by_queue);
            prop_assert_eq!(store.occupancy().free_words, by_queue);
        }
    }

    #[test]
    fn queue_index_matches_the_linear_oracle(raw in proptest::collection::vec(2u64..512, 0..64), probe in 0u64..600) {
        let mut sizes = raw;
        sizes.sort_unstable();
        sizes.dedup();
        prop_assert_eq!(queue_index(&sizes, probe), linear_index(&sizes, probe));
        prop_assert_eq!(queue_index(&sizes, probe), sizes.binary_search(&probe));
        // Probe every present size too: each must be found at its index.
        for (i, &s) in sizes.iter().enumerate() {
            prop_assert_eq!(queue_index(&sizes, s), Ok(i));
        }
    }
}
