//! GC-log rendering over a real run: the `-verbose:gc` view a HotSpot
//! practitioner would read.

use charon_gc::collector::{Collector, CollectorKind};
use charon_gc::gclog::{render_run, render_run_cms, render_run_with_units, HeapSnapshot};
use charon_gc::system::System;
use charon_heap::heap::{HeapConfig, JavaHeap};
use charon_heap::klass::KlassKind;
use charon_heap::VAddr;

#[test]
fn log_renders_a_real_collection_sequence() {
    let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(8 << 20));
    let k = heap.klasses_mut().register_array("byte[]", KlassKind::TypeArray);
    let mut gc = Collector::new(System::ddr4(), &heap, 4);

    let mut snaps = Vec::new();
    let mut events_seen = 0;
    for i in 0..3000u32 {
        let before = heap.used_bytes();
        let a = gc.alloc(&mut heap, k, 120).unwrap();
        if i % 4 == 0 {
            heap.add_root(a);
        }
        if heap.root_count() > 300 {
            heap.set_root(heap.root_count() - 300, VAddr::NULL);
        }
        // A collection happened during this alloc: snapshot it.
        while events_seen < gc.events.len() {
            snaps.push(HeapSnapshot::after(&heap, before));
            events_seen += 1;
        }
    }
    assert!(!gc.events.is_empty(), "the loop must trigger collections");
    let log = render_run(&gc.events, &snaps);
    // Every event renders one line in the HotSpot shape, then the run
    // closes with the pause-distribution summary.
    assert_eq!(log.lines().count(), gc.events.len() + 1);
    let (summary, event_lines) = log.lines().next_back().zip(Some(log.lines().count() - 1)).unwrap();
    for line in log.lines().take(event_lines) {
        assert!(line.contains("[GC (Allocation Failure)") || line.contains("[Full GC (Ergonomics)"), "{line}");
        assert!(line.contains("K->") && line.contains("secs]"), "{line}");
    }
    assert!(summary.contains("[pauses MinorGC n="), "{summary}");
    // Occupancy drops across each minor collection (garbage dominated).
    for (e, s) in gc.events.iter().zip(&snaps) {
        if e.kind == charon_gc::GcKind::Minor {
            assert!(s.used_after <= s.used_before, "a scavenge must not grow the heap");
        }
    }
}

#[test]
fn charon_log_closes_with_the_unit_pool_summary() {
    let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(8 << 20));
    let k = heap.klasses_mut().register_array("byte[]", KlassKind::TypeArray);
    let mut gc = Collector::new(System::charon(), &heap, 4);

    let mut snaps = Vec::new();
    let mut events_seen = 0;
    for i in 0..3000u32 {
        let before = heap.used_bytes();
        let a = gc.alloc(&mut heap, k, 120).unwrap();
        if i % 4 == 0 {
            heap.add_root(a);
        }
        if heap.root_count() > 300 {
            heap.set_root(heap.root_count() - 300, VAddr::NULL);
        }
        while events_seen < gc.events.len() {
            snaps.push(HeapSnapshot::after(&heap, before));
            events_seen += 1;
        }
    }
    assert!(!gc.events.is_empty(), "the loop must trigger collections");
    let units = gc.sys.unit_stats().expect("Charon systems expose pool stats");
    let log = render_run_with_units(&gc.events, &snaps, Some(&units), gc.gc_total_time());
    // Event lines, then the pause summary, then the unit summary: the
    // queue-depth high-water mark a provisioning decision needs is on
    // the last line of the log, not buried in a JSON artifact.
    assert_eq!(log.lines().count(), gc.events.len() + 2);
    let last = log.lines().next_back().unwrap();
    assert!(last.starts_with("[units "), "{last}");
    assert!(last.contains("qhw="), "{last}");
    assert!(last.contains("util="), "{last}");
    // Offloading ran, so at least one class must be non-idle.
    assert_ne!(last, "[units idle]");
}

#[test]
fn cms_log_interleaves_a_real_concurrent_cycle() {
    let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(8 << 20));
    let k = heap.klasses_mut().register_array("byte[]", KlassKind::TypeArray);
    let mut gc = Collector::new(System::ddr4(), &heap, 4);
    gc.kind = CollectorKind::Cms;

    let mut snaps = Vec::new();
    let mut events_seen = 0;
    // Chunky survivors: old-gen occupancy must cross the cms trigger
    // (half of capacity) for the concurrent cycle to start.
    for i in 0..6000u32 {
        let before = heap.used_bytes();
        let a = gc.alloc(&mut heap, k, 1024).unwrap();
        if i % 4 == 0 {
            heap.add_root(a);
        }
        if heap.root_count() > 300 {
            heap.set_root(heap.root_count() - 300, VAddr::NULL);
        }
        while events_seen < gc.events.len() {
            snaps.push(HeapSnapshot::after(&heap, before));
            events_seen += 1;
        }
    }
    // The alloc-driven cms_tick must have run a full concurrent cycle:
    // start, bounded steps, and the STW remark all leave events.
    let conc = &gc.concmark.events;
    assert!(conc.iter().any(|e| matches!(e, charon_gc::concmark::ConcEvent::Start { .. })), "no cycle started");
    assert!(conc.iter().any(|e| matches!(e, charon_gc::concmark::ConcEvent::Step { scanned, .. } if *scanned > 0)));
    assert!(conc.iter().any(|e| matches!(e, charon_gc::concmark::ConcEvent::Remark { marked, .. } if *marked > 0)));

    let log = render_run_cms(&gc.events, &snaps, conc, None, gc.gc_total_time(), gc.free.occupancy());
    // Pause lines and cycle lines share one simulated-time order; the
    // sweep left recycled chunks, so the log closes with occupancy.
    assert!(log.contains("[concmark start"), "{log}");
    assert!(log.contains("[concmark step"), "{log}");
    assert!(log.contains("[concmark remark"), "{log}");
    let last = log.lines().next_back().unwrap();
    assert!(last.starts_with("[freelist queues="), "{last}");
    // The cycle's lines land between the pauses, not appended at the
    // end: the first concmark line precedes the last GC pause line.
    let lines: Vec<&str> = log.lines().collect();
    let first_conc = lines.iter().position(|l| l.contains("[concmark")).unwrap();
    let last_pause = lines.iter().rposition(|l| l.contains("secs]")).unwrap();
    assert!(first_conc < last_pause, "cycle lines must interleave:\n{log}");
}
