//! GC-log rendering over a real run: the `-verbose:gc` view a HotSpot
//! practitioner would read.

use charon_gc::collector::Collector;
use charon_gc::gclog::{render_run, HeapSnapshot};
use charon_gc::system::System;
use charon_heap::heap::{HeapConfig, JavaHeap};
use charon_heap::klass::KlassKind;
use charon_heap::VAddr;

#[test]
fn log_renders_a_real_collection_sequence() {
    let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(8 << 20));
    let k = heap.klasses_mut().register_array("byte[]", KlassKind::TypeArray);
    let mut gc = Collector::new(System::ddr4(), &heap, 4);

    let mut snaps = Vec::new();
    let mut events_seen = 0;
    for i in 0..3000u32 {
        let before = heap.used_bytes();
        let a = gc.alloc(&mut heap, k, 120).unwrap();
        if i % 4 == 0 {
            heap.add_root(a);
        }
        if heap.root_count() > 300 {
            heap.set_root(heap.root_count() - 300, VAddr::NULL);
        }
        // A collection happened during this alloc: snapshot it.
        while events_seen < gc.events.len() {
            snaps.push(HeapSnapshot::after(&heap, before));
            events_seen += 1;
        }
    }
    assert!(!gc.events.is_empty(), "the loop must trigger collections");
    let log = render_run(&gc.events, &snaps);
    // Every event renders one line in the HotSpot shape, then the run
    // closes with the pause-distribution summary.
    assert_eq!(log.lines().count(), gc.events.len() + 1);
    let (summary, event_lines) = log.lines().next_back().zip(Some(log.lines().count() - 1)).unwrap();
    for line in log.lines().take(event_lines) {
        assert!(line.contains("[GC (Allocation Failure)") || line.contains("[Full GC (Ergonomics)"), "{line}");
        assert!(line.contains("K->") && line.contains("secs]"), "{line}");
    }
    assert!(summary.contains("[pauses MinorGC n="), "{summary}");
    // Occupancy drops across each minor collection (garbage dominated).
    for (e, s) in gc.events.iter().zip(&snaps) {
        if e.kind == charon_gc::GcKind::Minor {
            assert!(s.used_after <= s.used_before, "a scavenge must not grow the heap");
        }
    }
}
