use charon_gc::breakdown::Bucket;
use charon_gc::collector::{Collector, GcKind};
use charon_gc::system::System;
use charon_heap::heap::{HeapConfig, JavaHeap};
use charon_heap::klass::KlassKind;
use charon_heap::VAddr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
#[ignore]
fn diag_breakdowns() {
    for sys in [System::ddr4(), System::hmc(), System::charon(), System::ideal()] {
        let label = sys.label();
        let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(64 << 20));
        let point = heap.klasses_mut().register("Point", KlassKind::Instance, 4, vec![0, 1]);
        let node = heap.klasses_mut().register("Node", KlassKind::Instance, 6, vec![0, 1, 2]);
        let arr = heap.klasses_mut().register_array("Object[]", KlassKind::ObjArray);
        let bytes = heap.klasses_mut().register_array("byte[]", KlassKind::TypeArray);
        let mut gc = Collector::new(sys, &heap, 8);
        let mut rng = StdRng::seed_from_u64(99);
        let mut live: Vec<usize> = Vec::new();
        let mut roots: Vec<usize> = Vec::new();
        for _ in 0..6000 {
            let k = match rng.gen_range(0..4) {
                0 => point,
                1 => node,
                2 => arr,
                _ => bytes,
            };
            let len = match heap.klasses().get(k).kind() {
                KlassKind::ObjArray => rng.gen_range(8..64),
                KlassKind::TypeArray => rng.gen_range(256..4096),
                _ => 0,
            };
            let a = gc.alloc(&mut heap, k, len).unwrap();
            for s in heap.ref_slots(a) {
                if !live.is_empty() && rng.gen_bool(0.7) {
                    let t = heap.read_root(live[rng.gen_range(0..live.len())]);
                    if !t.is_null() {
                        heap.store_ref_with_barrier(s, t);
                    }
                }
            }
            if rng.gen_bool(0.33) {
                let idx = heap.add_root(a);
                roots.push(idx);
                live.push(idx);
            }
            if !roots.is_empty() && rng.gen_bool(0.05) {
                let idx = roots[rng.gen_range(0..roots.len())];
                heap.set_root(idx, VAddr::NULL);
            }
        }
        gc.minor_gc(&mut heap);
        gc.major_gc(&mut heap);
        println!(
            "=== {label}: total {} (minor {} x{}, major {} x{})",
            gc.gc_total_time(),
            gc.gc_time_by_kind(GcKind::Minor),
            gc.count(GcKind::Minor),
            gc.gc_time_by_kind(GcKind::Major),
            gc.count(GcKind::Major)
        );
        if let Some(dev) = gc.sys.device.as_ref() {
            println!("  device stats:\n{}", dev.stats());
            println!("  bitmap cache: {}", dev.bitmap_cache_stats());
            println!("  tlb (lookups, remote): {:?}", dev.tlb_stats());
        }
        for (k, name) in [(GcKind::Minor, "minor"), (GcKind::Major, "major")] {
            let bd = gc.breakdown_by_kind(k);
            print!("  {name}: ");
            for b in Bucket::ALL {
                print!("{b}={} ", bd.get(b));
            }
            println!();
        }
    }
}
