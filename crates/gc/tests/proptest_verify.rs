//! Property tests for the `verify::graph_signature` error paths:
//! single-bit (or single-field) corruption of a *reachable* object is
//! reported as the right `CorruptKind` — never a panic — while flips in
//! dead regions are provably benign (the signature does not move).

use charon_gc::collector::Collector;
use charon_gc::system::System;
use charon_gc::verify::{cross_check_bitmap, graph_signature, CorruptKind};
use charon_heap::heap::{HeapConfig, JavaHeap};
use charon_heap::klass::KlassKind;
use charon_heap::object;
use charon_heap::{VAddr, WORD_BYTES};
use proptest::prelude::*;

/// A compact recipe for one allocation (mirrors `proptest_gc.rs`).
#[derive(Debug, Clone)]
struct Alloc {
    kind: u8,
    len: u16,
    root: bool,
    wire_to: u16,
}

fn allocs() -> impl Strategy<Value = Vec<Alloc>> {
    proptest::collection::vec(
        (0u8..3, 1u16..64, proptest::bool::weighted(0.5), any::<u16>()).prop_map(|(kind, len, root, wire_to)| Alloc {
            kind,
            len,
            root,
            wire_to,
        }),
        10..120,
    )
}

/// Builds a graph, majors it to quiescence, and returns the root objects.
fn build(plan: &[Alloc]) -> (JavaHeap, Vec<VAddr>) {
    let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(8 << 20));
    let node = heap.klasses_mut().register("Node", KlassKind::Instance, 5, vec![0, 1, 2]);
    let arr = heap.klasses_mut().register_array("Object[]", KlassKind::ObjArray);
    let bytes = heap.klasses_mut().register_array("byte[]", KlassKind::TypeArray);
    let mut gc = Collector::new(System::ddr4(), &heap, 2);
    let mut roots = Vec::new();
    for a in plan {
        let (k, len) = match a.kind {
            0 => (node, 0),
            1 => (arr, u32::from(a.len % 16) + 1),
            _ => (bytes, u32::from(a.len)),
        };
        let obj = gc.alloc(&mut heap, k, len).expect("8 MB fits this plan");
        let slots = heap.ref_slots(obj);
        if !slots.is_empty() && !roots.is_empty() {
            let target = heap.read_root(roots[a.wire_to as usize % roots.len()]);
            if !target.is_null() {
                heap.store_ref_with_barrier(slots[0], target);
            }
        }
        if a.root {
            roots.push(heap.add_root(obj));
        }
    }
    gc.major_gc(&mut heap);
    let objs = (0..heap.root_count())
        .map(|i| heap.read_root(i))
        .filter(|r| !r.is_null())
        .collect();
    (heap, objs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Klass-id flips above the low bits on a reachable object: three
    /// registered klasses mean any id with a bit in 2..32 set was never
    /// issued — the walk must answer InvalidKlass, not unwind.
    #[test]
    fn reachable_klass_flip_is_invalid_klass(plan in allocs(), pick in any::<u16>(), bit in 2u64..32) {
        let (mut heap, objs) = build(&plan);
        prop_assume!(!objs.is_empty());
        prop_assert!(graph_signature(&heap).is_ok(), "quiescent graph must verify");
        let obj = objs[pick as usize % objs.len()];
        let kw = obj.add_words(1);
        heap.mem.write_word(kw, heap.mem.read_word(kw) ^ (1 << bit));
        let e = graph_signature(&heap).expect_err("unregistered klass must be rejected");
        prop_assert_eq!(e.kind, CorruptKind::InvalidKlass);
        prop_assert_eq!(e.addr, obj);
    }

    /// Array-length flips in the top 4 bits on a reachable array: the
    /// decoded size grows by at least 2^28 words (2 GB), past every
    /// space this heap could ever map — SizeOutOfBounds, every time.
    /// (Lower-bit flips can land the object's end inside a *later* space,
    /// where the walk instead trips over the garbage it parses — still an
    /// error, but not deterministically this one.)
    #[test]
    fn reachable_size_flip_is_size_out_of_bounds(plan in allocs(), pick in any::<u16>(), bit in 60u64..64) {
        let (mut heap, objs) = build(&plan);
        let arrays: Vec<VAddr> = objs
            .iter()
            .copied()
            .filter(|&o| heap.klasses().get(object::klass_id(&heap.mem, o)).kind().is_array())
            .collect();
        prop_assume!(!arrays.is_empty());
        let obj = arrays[pick as usize % arrays.len()];
        let kw = obj.add_words(1);
        heap.mem.write_word(kw, heap.mem.read_word(kw) | (1 << bit)); // grow, never shrink
        let e = graph_signature(&heap).expect_err("impossible size must be rejected");
        prop_assert_eq!(e.kind, CorruptKind::SizeOutOfBounds);
        prop_assert_eq!(e.addr, obj);
    }

    /// Reference flips at or above bit 32 in a reachable holder: the 8 MB
    /// heap sits far below 4 GiB, so the flipped referent escapes both
    /// generations — OutsideHeap names the bogus address.
    #[test]
    fn reachable_ref_flip_is_outside_heap(plan in allocs(), pick in any::<u16>(), bit in 32u64..63) {
        let (mut heap, objs) = build(&plan);
        let holders: Vec<VAddr> = objs
            .iter()
            .copied()
            .filter(|&o| heap.ref_slots(o).first().is_some_and(|&s| !heap.read_ref(s).is_null()))
            .collect();
        prop_assume!(!holders.is_empty());
        let holder = holders[pick as usize % holders.len()];
        let slot = heap.ref_slots(holder)[0];
        let wild = VAddr(heap.read_ref(slot).0 ^ (1 << bit));
        heap.mem.write_word(slot, wild.0);
        let e = graph_signature(&heap).expect_err("escaping reference must be rejected");
        prop_assert_eq!(e.kind, CorruptKind::OutsideHeap);
        prop_assert_eq!(e.addr, wild);
    }

    /// Dead-region flips are provably benign: after a major GC the young
    /// generation is empty, so flips there touch no reachable object —
    /// the signature must not move.
    #[test]
    fn dead_region_flips_leave_the_signature_alone(plan in allocs(), off in any::<u32>(), bit in 0u64..64) {
        let (mut heap, _) = build(&plan);
        let before = graph_signature(&heap).expect("quiescent graph verifies");
        let (top, end) = (heap.eden().top(), heap.eden().end());
        let free_words = (end - top) / WORD_BYTES;
        prop_assume!(free_words > 0);
        let addr = top.add_words(u64::from(off) % free_words);
        heap.mem.write_word(addr, heap.mem.read_word(addr) ^ (1 << bit));
        let after = graph_signature(&heap).expect("dead-region flip must stay benign");
        prop_assert_eq!(before, after, "dead-region flip at {} bit {} moved the signature", addr, bit);
    }

    /// A spuriously set begin-bitmap bit over a live region disagrees
    /// with the (zero) header-Marked population on a quiescent heap —
    /// the bitmap cross-check must report it.
    #[test]
    fn spurious_bitmap_bit_fails_the_population_cross_check(plan in allocs(), pick in any::<u16>()) {
        let (mut heap, objs) = build(&plan);
        prop_assume!(!objs.is_empty());
        prop_assert!(cross_check_bitmap(&heap).is_empty(), "quiescent bitmaps are empty");
        let obj = objs[pick as usize % objs.len()];
        let beg = *heap.beg_map();
        beg.set(&mut heap.mem, obj);
        let fails = cross_check_bitmap(&heap);
        prop_assert!(!fails.is_empty(), "set bit over {obj} escaped the population count");
    }
}
