//! Collector policy: HotSpot's triggering and allocation behaviour, the
//! OOM path, and sanity laws of the primitive timing paths.

use charon_gc::collector::Collector;
use charon_gc::system::System;
use charon_heap::heap::{HeapConfig, JavaHeap};
use charon_heap::klass::KlassKind;
use charon_heap::VAddr;
use charon_sim::time::Ps;

fn heap_with_arrays(bytes: u64) -> (JavaHeap, charon_heap::klass::KlassId) {
    let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(bytes));
    let k = heap.klasses_mut().register_array("byte[]", KlassKind::TypeArray);
    (heap, k)
}

#[test]
fn eden_exhaustion_triggers_minor_gc() {
    let (mut heap, k) = heap_with_arrays(8 << 20);
    let mut gc = Collector::new(System::ddr4(), &heap, 4);
    let eden = heap.eden().capacity_bytes();
    let obj_bytes = 8 * (2 + 1024u64);
    let n = eden / obj_bytes + 8; // deliberately overflow eden once
    for _ in 0..n {
        gc.alloc(&mut heap, k, 1024).unwrap();
    }
    assert_eq!(gc.count(charon_gc::GcKind::Minor), 1, "exactly one scavenge for one overflow");
    assert_eq!(gc.count(charon_gc::GcKind::Major), 0);
}

#[test]
fn large_objects_fall_back_to_old() {
    let (mut heap, k) = heap_with_arrays(8 << 20);
    let mut gc = Collector::new(System::ddr4(), &heap, 4);
    // Bigger than Eden: can never be young-allocated.
    let eden_words = heap.eden().capacity_bytes() / 8;
    let a = gc.alloc(&mut heap, k, (eden_words + 100) as u32).unwrap();
    assert!(heap.in_old(a), "oversized allocation must land in Old");
    // It is a fully valid object there.
    assert_eq!(heap.obj_klass(a).name(), "byte[]");
}

#[test]
fn true_exhaustion_reports_oom() {
    let (mut heap, k) = heap_with_arrays(2 << 20);
    let mut gc = Collector::new(System::ddr4(), &heap, 2);
    // Root everything so nothing can ever be reclaimed.
    let mut err = None;
    for _ in 0..4000 {
        match gc.alloc(&mut heap, k, 256) {
            Ok(a) => {
                heap.add_root(a);
            }
            Err(e) => {
                err = Some(e);
                break;
            }
        }
    }
    let e = err.expect("a fully live heap must eventually OOM");
    assert!(e.words > 0);
    assert!(e.to_string().contains("OutOfMemoryError"));
    // The failure is clean: the heap is still fully walkable, and the
    // fallible full collection reports the same condition without
    // touching state.
    let (sig, stats) = charon_gc::verify::graph_signature(&heap).expect("heap graph verifies");
    assert!(stats.bytes > heap.old().capacity_bytes(), "OOM really means live > old");
    assert!(gc.try_major_gc(&mut heap).is_err());
    let (sig2, _) = charon_gc::verify::graph_signature(&heap).expect("heap graph verifies");
    assert_eq!(sig, sig2, "an OOM must not corrupt the heap");
}

#[test]
fn event_log_is_complete_and_ordered() {
    let (mut heap, k) = heap_with_arrays(8 << 20);
    let mut gc = Collector::new(System::ddr4(), &heap, 4);
    for _ in 0..2000 {
        let a = gc.alloc(&mut heap, k, 128).unwrap();
        heap.add_root(a);
        if heap.root_count() > 400 {
            heap.set_root(heap.root_count() - 400, VAddr::NULL);
        }
    }
    gc.major_gc(&mut heap);
    assert!(!gc.events.is_empty());
    let mut prev_end = Ps::ZERO;
    for e in &gc.events {
        assert!(e.start >= prev_end, "GC events must not overlap");
        assert!(e.wall > Ps::ZERO);
        assert!(e.breakdown.total() > Ps::ZERO);
        assert!(e.host_active > Ps::ZERO);
        match e.kind {
            charon_gc::GcKind::Minor => assert!(e.minor.is_some() && e.major.is_none()),
            charon_gc::GcKind::Major => assert!(e.major.is_some() && e.minor.is_none()),
        }
        prev_end = e.start + e.wall;
    }
    assert_eq!(gc.gc_total_time(), gc.events.iter().map(|e| e.wall).sum());
    assert!(gc.now >= prev_end);
}

#[test]
fn copy_time_grows_with_size_on_every_backend() {
    for mk in [System::ddr4 as fn() -> System, System::hmc, System::charon, System::cpu_side] {
        let mut sys = mk();
        let label = sys.label();
        let small = sys.prim_copy(0, Ps::ZERO, VAddr(0x1000_0000), VAddr(0x1200_0000), 1 << 10);
        let mut sys = mk();
        let big = sys.prim_copy(0, Ps::ZERO, VAddr(0x1000_0000), VAddr(0x1200_0000), 1 << 20);
        assert!(big.0 > 4 * small.0, "{label}: 1 MB copy ({big}) must dwarf 1 KB copy ({small})");
    }
}

#[test]
fn search_time_scales_with_scanned_bytes() {
    let mut sys = System::ddr4();
    let short = sys.prim_search(0, Ps::ZERO, VAddr(0x1000_0000), 512);
    let mut sys = System::ddr4();
    let long = sys.prim_search(0, Ps::ZERO, VAddr(0x1000_0000), 64 << 10);
    assert!(long.0 > 8 * short.0);
}

#[test]
fn scan_push_time_grows_with_reference_count() {
    use charon_core::device::{ScanAction, ScanRef};
    let refs_of = |n: u64| -> Vec<ScanRef> {
        (0..n)
            .map(|i| ScanRef {
                referent: VAddr(0x1100_0000 + i * 4096),
                action: ScanAction::Push { stack_slot: VAddr(0x1400_0000 + i * 8) },
            })
            .collect()
    };
    // Start past the rank's t=0 refresh window so the small case is not
    // dominated by a tRFC stall.
    let t0 = Ps::from_ns(300.0);
    let mut sys = System::ddr4();
    let few = sys.prim_scan_push(0, t0, VAddr(0x1000_0000), 4 * 8, &refs_of(4), true) - t0;
    let mut sys = System::ddr4();
    let many = sys.prim_scan_push(0, t0, VAddr(0x1000_0000), 512 * 8, &refs_of(512), true) - t0;
    assert!(many.0 > 10 * few.0, "few={few}, many={many}");
}

#[test]
fn offload_mask_none_equals_host_backend_timing() {
    // With every primitive masked off, the Charon backend must behave like
    // the plain HMC host for the primitives themselves.
    let mut masked = System::charon();
    masked.offload = charon_gc::system::OffloadMask::none();
    let mut host = System::hmc();
    let a = masked.prim_copy(0, Ps::ZERO, VAddr(0x1000_0000), VAddr(0x1200_0000), 64 << 10);
    let b = host.prim_copy(0, Ps::ZERO, VAddr(0x1000_0000), VAddr(0x1200_0000), 64 << 10);
    assert_eq!(a, b, "masked offload must take the identical host path");
}

#[test]
fn gc_threads_one_is_valid_and_slowest() {
    let mk = |threads| {
        let (mut heap, k) = heap_with_arrays(8 << 20);
        let mut gc = Collector::new(System::ddr4(), &heap, threads);
        for _ in 0..1500 {
            let a = gc.alloc(&mut heap, k, 200).unwrap();
            heap.add_root(a);
        }
        gc.minor_gc(&mut heap);
        gc.gc_total_time()
    };
    let t1 = mk(1);
    let t4 = mk(4);
    assert!(t4 < t1, "4 GC threads ({t4}) must beat 1 ({t1})");
}
