//! Property tests: arbitrary object graphs survive arbitrary collection
//! sequences, on the host and offloaded backends alike.

use charon_gc::collector::Collector;
use charon_gc::system::System;
use charon_gc::verify::{assert_headers_clean, graph_signature};
use charon_heap::heap::{HeapConfig, JavaHeap};
use charon_heap::klass::KlassKind;
use charon_heap::VAddr;
use proptest::prelude::*;

/// A compact recipe for one allocation.
#[derive(Debug, Clone)]
struct Alloc {
    kind: u8,
    len: u16,
    root: bool,
    wire_to: u16,
    drop_root: Option<u16>,
}

fn allocs() -> impl Strategy<Value = Vec<Alloc>> {
    proptest::collection::vec(
        (0u8..3, 1u16..96, proptest::bool::weighted(0.4), any::<u16>(), proptest::option::weighted(0.08, any::<u16>()))
            .prop_map(|(kind, len, root, wire_to, drop_root)| Alloc { kind, len, root, wire_to, drop_root }),
        20..300,
    )
}

fn gc_plan() -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), 1..5)
}

fn run_plan(sys: System, plan: &[Alloc], gcs: &[bool]) -> (u64, u64, u64) {
    let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(8 << 20));
    let node = heap.klasses_mut().register("Node", KlassKind::Instance, 5, vec![0, 1, 2]);
    let arr = heap.klasses_mut().register_array("Object[]", KlassKind::ObjArray);
    let bytes = heap.klasses_mut().register_array("byte[]", KlassKind::TypeArray);
    let mut gc = Collector::new(sys, &heap, 4);
    let mut roots: Vec<usize> = Vec::new();

    for a in plan {
        let (k, len) = match a.kind {
            0 => (node, 0),
            1 => (arr, u32::from(a.len % 24) + 1),
            _ => (bytes, u32::from(a.len)),
        };
        let obj = gc.alloc(&mut heap, k, len).expect("8 MB is plenty for this plan");
        // Deterministic payload for type arrays.
        if a.kind == 2 {
            for w in 0..u64::from(len) {
                heap.mem.write_word(obj.add_words(2 + w), 0x5150_0000 + w);
            }
        }
        // Wire one slot to a live object (fresh address via its root).
        let slots = heap.ref_slots(obj);
        if !slots.is_empty() && !roots.is_empty() {
            let target = heap.read_root(roots[a.wire_to as usize % roots.len()]);
            if !target.is_null() {
                heap.store_ref_with_barrier(slots[0], target);
            }
        }
        if a.root {
            roots.push(heap.add_root(obj));
        }
        if let Some(d) = a.drop_root {
            if !roots.is_empty() {
                let idx = roots[d as usize % roots.len()];
                heap.set_root(idx, VAddr::NULL);
            }
        }
    }

    let (sig_before, before) = graph_signature(&heap).expect("heap graph verifies");
    for &minor in gcs {
        if minor {
            gc.minor_gc(&mut heap);
        } else {
            gc.major_gc(&mut heap);
        }
        let (sig, stats) = graph_signature(&heap).expect("heap graph verifies");
        assert_eq!(sig, sig_before, "collection changed the reachable graph");
        assert_eq!(stats.objects, before.objects);
        assert_eq!(stats.bytes, before.bytes);
    }
    assert_headers_clean(&heap);
    (sig_before, before.objects, before.bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_graphs_survive_arbitrary_collections(plan in allocs(), gcs in gc_plan()) {
        let host = run_plan(System::ddr4(), &plan, &gcs);
        let dev = run_plan(System::charon(), &plan, &gcs);
        prop_assert_eq!(host, dev, "backends must agree functionally");
    }

    #[test]
    fn collections_are_idempotent_on_quiescent_heaps(plan in allocs()) {
        // Once collected with no mutation in between, a second collection
        // finds the identical graph and moves nothing young.
        let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(8 << 20));
        let node = heap.klasses_mut().register("Node", KlassKind::Instance, 5, vec![0, 1, 2]);
        let mut gc = Collector::new(System::ddr4(), &heap, 2);
        for a in &plan {
            let obj = gc.alloc(&mut heap, node, 0).expect("fits");
            if a.root {
                heap.add_root(obj);
            }
        }
        gc.major_gc(&mut heap);
        let (sig1, _) = graph_signature(&heap).expect("heap graph verifies");
        let ev = gc.minor_gc(&mut heap);
        let (sig2, _) = graph_signature(&heap).expect("heap graph verifies");
        prop_assert_eq!(sig1, sig2);
        prop_assert_eq!(ev.minor.unwrap().objects_copied, 0, "young is empty after a major GC");
    }
}
