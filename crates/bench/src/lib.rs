//! # charon-bench — the table/figure regeneration harness
//!
//! One `harness = false` bench target per table and figure of the paper's
//! evaluation (§5); `cargo bench -p charon-bench` regenerates all of them.
//! This library holds the shared experiment plumbing: platform
//! construction, run caching, geometric means, and fixed-width table
//! printing.

use charon_gc::system::System;
use charon_workloads::{run_workload, RunOptions, RunResult, WorkloadSpec};

/// The four platforms of Fig. 12, in presentation order.
pub const PLATFORMS: [&str; 4] = ["DDR4", "HMC", "Charon", "Ideal"];

/// Builds a platform by its label.
///
/// # Panics
///
/// Panics on an unknown label.
pub fn system_by_label(label: &str) -> System {
    match label {
        "DDR4" => System::ddr4(),
        "HMC" => System::hmc(),
        "Charon" => System::charon(),
        "Charon-CPU-side" => System::cpu_side(),
        "Ideal" => System::ideal(),
        other => panic!("unknown platform {other}"),
    }
}

/// Runs one workload on one platform with default options (or the given
/// overrides), panicking on OOM — benches are sized never to OOM.
pub fn run(spec: &WorkloadSpec, label: &str, opts: &RunOptions) -> RunResult {
    run_workload(spec, system_by_label(label), opts).unwrap_or_else(|e| panic!("{} on {label}: {e}", spec.short))
}

/// Geometric mean of a non-empty slice.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of nothing");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Prints one fixed-width row: a label column then numeric cells.
pub fn print_row(label: &str, cells: &[String]) {
    print!("{label:<16}");
    for c in cells {
        print!("{c:>14}");
    }
    println!();
}

/// Prints a rule and a figure/table banner.
pub fn banner(title: &str, caption: &str) {
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("{caption}");
    println!("{}", "-".repeat(78));
}

/// Formats a ratio cell like "3.29x".
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a percentage cell.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_known_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn platform_labels_resolve() {
        for p in PLATFORMS {
            assert_eq!(system_by_label(p).label(), p);
        }
        assert_eq!(system_by_label("Charon-CPU-side").label(), "Charon-CPU-side");
    }

    #[test]
    #[should_panic]
    fn unknown_platform_panics() {
        system_by_label("PIM-9000");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(3.287), "3.29x");
        assert_eq!(pct(0.607), "60.7%");
    }
}
