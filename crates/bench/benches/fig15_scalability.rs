//! Figure 15 — GC throughput scalability with an increasing number of GC
//! threads.
//!
//! Three systems over 1/2/4/8 GC threads: the DDR4 host (hardly scales —
//! 34 GB/s ceiling), Charon with unified structures (single bitmap cache +
//! TLB at the center cube), and Charon with distributed slices (scales
//! better as center-cube contention is relieved). Throughput is normalized
//! to the 1-thread DDR4 run of the same workload.

use charon_bench::{banner, print_row, ratio, run};
use charon_gc::system::System;
use charon_workloads::{run_workload, table3, RunOptions};

fn main() {
    banner(
        "Figure 15: GC throughput vs. GC threads (normalized to 1-thread DDR4)",
        "paper: DDR4 flat; Charon scales; distributed >= unified except low-pressure cases",
    );
    let threads = [1usize, 2, 4, 8];
    // One representative per framework + the paper's exception case CC.
    let picks = ["LR", "CC", "PR"];

    for short in picks {
        let spec = table3().into_iter().find(|w| w.short == short).expect("known workload");
        println!("\n{short}:");
        print_row("threads", &threads.iter().map(|t| t.to_string()).collect::<Vec<_>>());
        let base = run(&spec, "DDR4", &RunOptions { gc_threads: 1, ..Default::default() }).gc_time;

        for (label, mk) in [
            ("DDR4", None),
            ("Charon-unified", Some(charon_core::StructureMode::Unified)),
            ("Charon-distrib", Some(charon_core::StructureMode::Distributed)),
        ] {
            let mut cells = Vec::new();
            for &t in &threads {
                let opts = RunOptions { gc_threads: t, ..Default::default() };
                let gc_time = match mk {
                    None => run(&spec, "DDR4", &opts).gc_time,
                    Some(mode) => {
                        run_workload(&spec, System::charon_structured(mode), &opts)
                            .expect("no OOM")
                            .gc_time
                    }
                };
                cells.push(ratio(base.0 as f64 / gc_time.0.max(1) as f64));
            }
            print_row(label, &cells);
        }
    }
}
