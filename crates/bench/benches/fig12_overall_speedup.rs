//! Figure 12 — Normalized GC performance of Charon compared with the host
//! CPU-only execution.
//!
//! Four platforms per workload: DDR4, HMC (host-only on the stacked
//! memory), Charon (near-memory offload), Ideal (zero-cycle offload).
//! The paper reports geomean speedups of 1.21× (HMC) and 3.29× (Charon)
//! over DDR4, with Charon tracking Ideal closely.

use charon_bench::{banner, geomean, print_row, ratio, run, PLATFORMS};
use charon_workloads::{table3, RunOptions};

fn main() {
    banner(
        "Figure 12: Normalized GC performance (speedup over DDR4, higher is better)",
        "paper: HMC geomean 1.21x, Charon geomean 3.29x, Ideal above Charon",
    );
    print_row("workload", &PLATFORMS.iter().map(|p| p.to_string()).collect::<Vec<_>>());

    let opts = RunOptions::default();
    let mut per_platform: Vec<Vec<f64>> = vec![Vec::new(); PLATFORMS.len()];
    for spec in table3() {
        let base = run(&spec, "DDR4", &opts).gc_time;
        let mut cells = Vec::new();
        for (i, p) in PLATFORMS.iter().enumerate() {
            let t = if *p == "DDR4" { base } else { run(&spec, p, &opts).gc_time };
            let speedup = base.0 as f64 / t.0.max(1) as f64;
            per_platform[i].push(speedup);
            cells.push(ratio(speedup));
        }
        print_row(spec.short, &cells);
    }
    let cells: Vec<String> = per_platform.iter().map(|v| ratio(geomean(v))).collect();
    print_row("geomean", &cells);
}
