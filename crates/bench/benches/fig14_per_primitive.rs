//! Figure 14 — Per-primitive speedup analysis (S: Search, SP: Scan&Push,
//! C: Copy, BC: Bitmap Count).
//!
//! For each workload, the time spent in each primitive's breakdown bucket
//! on the DDR4 host divided by the same bucket under Charon. The paper
//! reports averages of 2.90× (Search), 1.20× (Scan&Push, low or negative
//! for the reference-poor ML apps), 10.17× (Copy, max 26.15×), and 5.63×
//! (Bitmap Count).

use charon_bench::{banner, print_row, ratio, run};
use charon_gc::breakdown::Bucket;
use charon_sim::time::Ps;
use charon_workloads::{table3, RunOptions};

fn main() {
    banner(
        "Figure 14: Per-primitive speedup (DDR4 bucket time / Charon bucket time)",
        "paper averages: S 2.90x, SP 1.20x, C 10.17x (max 26.15x), BC 5.63x",
    );
    let prims = [Bucket::Search, Bucket::ScanPush, Bucket::Copy, Bucket::BitmapCount];
    print_row("workload", &["S", "SP", "C", "BC"].iter().map(|s| s.to_string()).collect::<Vec<_>>());

    let opts = RunOptions::default();
    let mut sums = vec![Vec::new(); prims.len()];
    for spec in table3() {
        let d = run(&spec, "DDR4", &opts);
        let c = run(&spec, "Charon", &opts);
        let mut cells = Vec::new();
        for (i, &b) in prims.iter().enumerate() {
            let host = d.minor_breakdown.get(b) + d.major_breakdown.get(b);
            let dev = c.minor_breakdown.get(b) + c.major_breakdown.get(b);
            if host == Ps::ZERO || dev == Ps::ZERO {
                cells.push("-".into());
            } else {
                let s = host.0 as f64 / dev.0 as f64;
                sums[i].push(s);
                cells.push(ratio(s));
            }
        }
        print_row(spec.short, &cells);
    }
    let avg: Vec<String> = sums
        .iter()
        .map(|v| if v.is_empty() { "-".into() } else { ratio(v.iter().sum::<f64>() / v.len() as f64) })
        .collect();
    print_row("average", &avg);
}
