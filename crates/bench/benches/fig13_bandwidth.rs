//! Figure 13 — Utilized bandwidth during GC and ratio of local accesses.
//!
//! Bars: average DRAM bandwidth each platform sustains during GC pauses —
//! Charon exceeds the 80 GB/s off-chip link by using cube-internal TSVs.
//! Line: the fraction of near-memory requests served by the issuing
//! unit's local cube (>70% typical; LR and CC fall to about half).

use charon_bench::{banner, pct, print_row, run, PLATFORMS};
use charon_workloads::{table3, RunOptions};

fn main() {
    banner(
        "Figure 13: Utilized bandwidth during GC (GB/s) and Charon local-access ratio",
        "paper: Charon well above the 80 GB/s off-chip budget; >70% local for most apps",
    );
    let mut cols: Vec<String> = PLATFORMS.iter().take(3).map(|p| format!("{p} GB/s")).collect();
    cols.push("local".into());
    print_row("workload", &cols);

    let opts = RunOptions::default();
    for spec in table3() {
        let mut cells = Vec::new();
        let mut local = 0.0;
        for p in PLATFORMS.iter().take(3) {
            let r = run(&spec, p, &opts);
            cells.push(format!("{:.1}", r.gc_bandwidth_gbps()));
            if *p == "Charon" {
                local = r.local_ratio();
            }
        }
        cells.push(pct(local));
        print_row(spec.short, &cells);
    }
    println!("(off-chip budget: DDR4 34 GB/s total, HMC 80 GB/s per link)");
}
