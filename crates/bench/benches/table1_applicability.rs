//! Table 1 — Applicability of Charon primitives to popular collectors.
//!
//! All three rows are *measured*: each collector runs under the Charon
//! backend and the device's offload counters show which primitives it
//! actually exercised. G1 is the `g1lite` mixed collection (region
//! liveness from Bitmap Count — the "slight modification" the paper
//! mentions); CMS is the non-compacting mark-sweep, whose Bitmap Count
//! count is structurally zero.

use charon_bench::banner;
use charon_core::PrimType;
use charon_gc::collector::Collector;
use charon_gc::marksweep::mark_sweep_old;
use charon_gc::system::System;
use charon_gc::threads::GcThreads;
use charon_heap::heap::{HeapConfig, JavaHeap};
use charon_workloads::mutator::Mutator;
use charon_workloads::spec::by_short;

fn mark(used: bool, native: bool) -> &'static str {
    match (used, native) {
        (true, true) => "vv",
        (true, false) => "v",
        _ => "x",
    }
}

fn main() {
    banner(
        "Table 1: Applicability of Charon primitives (vv: as is, v: minor fix, x: n/a)",
        "paper: ParallelScavenge vv/vv/v, G1 vv/vv/v, CMS vv/vv/x",
    );
    println!("{:<18}{:>12}{:>12}{:>14}  Remarks", "Collector", "Copy/Search", "Scan&Push", "Bitmap Count");

    // ParallelScavenge: run a workload under the Charon backend; the
    // device counters prove which primitives fired.
    let spec = by_short("KM").expect("known workload");
    let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(spec.heap_bytes(1.25)));
    let mut m = Mutator::new(spec.clone(), &mut heap);
    let mut gc = Collector::new(System::charon(), &heap, 8);
    m.build_resident(&mut heap, &mut gc).expect("no OOM");
    for _ in 0..spec.supersteps {
        m.superstep(&mut heap, &mut gc).expect("no OOM");
    }
    gc.major_gc(&mut heap);
    let ps = gc.sys.device.as_ref().expect("device").stats().clone();
    println!(
        "{:<18}{:>12}{:>12}{:>14}  High throughput (measured)",
        "ParallelScavenge",
        mark(ps.prim(PrimType::Copy).offloads > 0 && ps.prim(PrimType::Search).offloads > 0, true),
        mark(ps.prim(PrimType::ScanPush).offloads > 0, true),
        mark(ps.prim(PrimType::BitmapCount).offloads > 0, false)
    );

    // G1: the g1lite mixed collection, measured. Its Bitmap Count comes
    // from the modified region-liveness scan — the "minor fix" mark.
    let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(spec.heap_bytes(1.25)));
    let mut m = Mutator::new(spec.clone(), &mut heap);
    let mut gc = Collector::new(System::charon(), &heap, 8);
    m.build_resident(&mut heap, &mut gc).expect("no OOM");
    for _ in 0..spec.supersteps / 2 {
        m.superstep(&mut heap, &mut gc).expect("no OOM");
    }
    gc.major_gc(&mut heap); // promote, then create old-gen garbage
    for i in 0..heap.root_count() {
        if i % 3 == 0 {
            heap.set_root(i, charon_heap::VAddr::NULL);
        }
    }
    let before = gc.sys.device.as_ref().expect("device").stats().clone();
    let mut threads = GcThreads::new(8, gc.now);
    let (_bd, g1s, _free) =
        charon_gc::g1lite::g1_mixed_collect(&mut gc.sys, &mut heap, &mut threads, m.klasses().data_array, &mut charon_gc::freelist::FreeStore::new());
    let after = gc.sys.device.as_ref().expect("device").stats().clone();
    let d = |p: PrimType| after.prim(p).offloads > before.prim(p).offloads;
    let g1_note = format!("Low latency (measured; {} regions evacuated)", g1s.collection_set);
    println!(
        "{:<18}{:>12}{:>12}{:>14}  {}",
        "G1",
        mark(d(PrimType::Copy) || ps.prim(PrimType::Search).offloads > 0, true),
        mark(d(PrimType::ScanPush), true),
        mark(d(PrimType::BitmapCount), false),
        g1_note
    );

    // CMS-style mark-sweep: measured — no compaction, so Bitmap Count
    // never fires.
    let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(spec.heap_bytes(1.25)));
    let mut m = Mutator::new(spec.clone(), &mut heap);
    let mut gc = Collector::new(System::charon(), &heap, 8);
    m.build_resident(&mut heap, &mut gc).expect("no OOM");
    for _ in 0..spec.supersteps / 2 {
        m.superstep(&mut heap, &mut gc).expect("no OOM");
    }
    let before = gc.sys.device.as_ref().expect("device").stats().clone();
    let mut threads = GcThreads::new(8, gc.now);
    let filler = m.klasses().data_array;
    let (_bd, sweep, _free) = mark_sweep_old(&mut gc.sys, &mut heap, &mut threads, filler);
    let after = gc.sys.device.as_ref().expect("device").stats().clone();
    let bc_fired = after.prim(PrimType::BitmapCount).offloads > before.prim(PrimType::BitmapCount).offloads;
    let sp_fired = after.prim(PrimType::ScanPush).offloads > before.prim(PrimType::ScanPush).offloads;
    let cms_note = format!("No compaction (measured; swept {} KB)", sweep.freed_bytes / 1024);
    println!(
        "{:<18}{:>12}{:>12}{:>14}  {}",
        "CMS",
        mark(before.prim(PrimType::Copy).offloads > 0, true), // young scavenges still copy
        mark(sp_fired, true),
        mark(bc_fired, false),
        cms_note
    );
}
