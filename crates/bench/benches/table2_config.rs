//! Table 2 — Architectural parameters for evaluation, rendered from the
//! configuration structs that drive every simulation in this repository
//! (single source of truth: `charon_sim::config`).

use charon_bench::banner;
use charon_sim::config::SystemConfig;

fn main() {
    banner("Table 2: Architectural parameters for evaluation", "verbatim from charon_sim::config");
    println!("{}", SystemConfig::table2_ddr4());
}
