//! Ablations of the design decisions DESIGN.md §3 calls out.
//!
//! 1. **Primitive selection** (§3.3): offload one primitive at a time and
//!    all together — which primitive buys how much of the speedup, and
//!    whether the four compose.
//! 2. **MAI depth** (§4.1): sweep the request-buffer size that bounds each
//!    unit's memory-level parallelism.
//! 3. **Unit provisioning** (Table 2): halve/double the Copy/Search units.
//! 4. **Host prefetching** (timing-substrate honesty check): how much of
//!    the DDR4 baseline's strength — i.e. how little of Charon's margin —
//!    comes from the host's stream prefetcher.

use charon_bench::{banner, print_row, ratio, run};
use charon_gc::system::{OffloadMask, System};
use charon_workloads::{run_workload, spec::by_short, RunOptions};

fn main() {
    let spec = by_short("LR").expect("LR is in Table 3");
    let opts = RunOptions::default();
    banner(
        "Ablation study (workload LR; speedup over the DDR4 host)",
        "each row disables or rescales exactly one design ingredient",
    );
    let base = run(&spec, "DDR4", &opts).gc_time;
    let speedup = |t: charon_sim::time::Ps| ratio(base.0 as f64 / t.0.max(1) as f64);

    // 1. Primitive selection.
    println!("\nA. primitive selection (which offloads buy the win)");
    print_row("offloaded", &["speedup".into()]);
    for (label, mask) in [
        ("none (=HMC)", OffloadMask::none()),
        ("copy only", OffloadMask::only("copy").expect("known primitive")),
        ("search only", OffloadMask::only("search").expect("known primitive")),
        ("scan&push only", OffloadMask::only("scan&push").expect("known primitive")),
        ("bitmap only", OffloadMask::only("bitmap_count").expect("known primitive")),
        ("all (paper)", OffloadMask::all()),
    ] {
        let mut sys = System::charon();
        sys.offload = mask;
        let t = run_workload(&spec, sys, &opts).expect("no OOM").gc_time;
        print_row(label, &[speedup(t)]);
    }

    // 2. MAI depth.
    println!("\nB. MAI request-buffer entries (per-unit MLP bound)");
    print_row("entries", &["speedup".into()]);
    for entries in [4usize, 16, 64, 256] {
        let mut sys = System::charon();
        sys.cfg.charon.mai_entries = entries;
        let dev = charon_core::CharonDevice::new(
            &sys.cfg,
            charon_core::Placement::MemorySide,
            charon_core::StructureMode::Table4,
        );
        sys.device = Some(dev);
        let t = run_workload(&spec, sys, &opts).expect("no OOM").gc_time;
        print_row(&entries.to_string(), &[speedup(t)]);
    }

    // 3. Copy/Search unit provisioning.
    println!("\nC. Copy/Search units (Table 2 ships 8, two per cube)");
    print_row("units", &["speedup".into()]);
    for units in [4usize, 8, 16] {
        let mut sys = System::charon();
        sys.cfg.charon.copy_search_units = units;
        let dev = charon_core::CharonDevice::new(
            &sys.cfg,
            charon_core::Placement::MemorySide,
            charon_core::StructureMode::Table4,
        );
        sys.device = Some(dev);
        let t = run_workload(&spec, sys, &opts).expect("no OOM").gc_time;
        print_row(&units.to_string(), &[speedup(t)]);
    }

    // 4. Host prefetching.
    println!("\nD. host stream prefetcher (baseline strength)");
    print_row("prefetch", &["DDR4 GC time".into(), "Charon speedup".into()]);
    for on in [true, false] {
        let mut d = System::ddr4();
        d.host.prefetch_enabled = on;
        let td = run_workload(&spec, d, &opts).expect("no OOM").gc_time;
        let mut c = System::charon();
        c.host.prefetch_enabled = on;
        let tc = run_workload(&spec, c, &opts).expect("no OOM").gc_time;
        print_row(if on { "on (default)" } else { "off" }, &[td.to_string(), ratio(td.0 as f64 / tc.0.max(1) as f64)]);
    }
}
