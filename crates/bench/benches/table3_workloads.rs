//! Table 3 — Workloads, with the paper's datasets/heaps and the scaled
//! heaps this reproduction runs (DESIGN.md §1 scaling substitution).

use charon_bench::banner;
use charon_workloads::table3;

fn main() {
    banner("Table 3: Workloads", "paper heaps scaled ~1/256; synthetic datasets reproduce demographics");
    println!("{:<10}{:<28}{:<28}{:>12}{:>14}", "", "Workload", "Dataset (paper)", "Heap(paper)", "Heap(scaled)");
    for w in table3() {
        println!(
            "{:<10}{:<28}{:<28}{:>12}{:>11} MB",
            w.framework.to_string(),
            format!("{} ({})", w.name, w.short),
            w.paper_dataset,
            w.paper_heap,
            w.default_heap_bytes() >> 20
        );
    }
}
