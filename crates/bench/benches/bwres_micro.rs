//! Wall-clock micro-benchmark of the bounded-skew ring meter
//! ([`EpochBw`]) against the pre-ring `HashMap` implementation
//! ([`HashMapOracle`]) on a one-million-reservation mixed-skew workload
//! shaped like the simulator's real call profile: batched transfers
//! hammering a single bus start time (what the DRAM/NoC pending groups
//! produce) interleaved with small reservations skewed around many
//! loosely-ordered agent clocks.
//!
//! The whole workload stays inside the ring's 4096-epoch skew window and
//! below the `HashMap`'s eviction threshold, so both implementations must
//! return bit-identical completion times — the run cross-checks that
//! before reporting, making the timing comparison apples-to-apples.
//!
//! Uses a plain `std::time::Instant` harness instead of criterion so the
//! workspace builds with no registry access (see README "Building
//! offline").

use charon_sim::bwres::{EpochBw, HashMapOracle};
use charon_sim::time::{Bandwidth, Ps};
use std::hint::black_box;
use std::time::Instant;

const TOTAL: usize = 1_000_000;
const EPOCH_PS: u64 = 1_000_000; // 1 µs epochs at 80 GB/s → 80 KB/epoch

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The mixed-skew workload. Every fourth reservation is a 256 B chunk of
/// a saturating batched transfer that hammers t = 0 — the
/// bandwidth-ceiling pattern, where the ring's cursor memo is O(1) per
/// chunk while the `HashMap` rescans every epoch the backlog has already
/// filled. The rest are small reservations skewed ±100 epochs around
/// per-agent clocks that advance ~2.5k epochs over the run.
fn workload() -> Vec<(Ps, u64)> {
    let mut rng = 0x0123_4567_89ab_cdefu64;
    let mut reqs = Vec::with_capacity(TOTAL);
    for i in 0..TOTAL {
        if i % 4 == 0 {
            reqs.push((Ps::ZERO, 256));
        } else {
            let clock = 850 * EPOCH_PS + i as u64 * 2500;
            let r = splitmix64(&mut rng);
            let skew = (r % (200 * EPOCH_PS)) as i64 - (100 * EPOCH_PS) as i64;
            let start = (clock as i64 + skew).max(0) as u64;
            let units = 64 + (r >> 32) % 128;
            reqs.push((Ps(start), units));
        }
    }
    reqs
}

fn main() {
    let reqs = workload();

    // Warm both implementations (and the request buffer) on a prefix.
    {
        let mut o = HashMapOracle::from_bandwidth(Bandwidth::gbps(80.0), Ps::from_us(1.0));
        let mut r = EpochBw::from_bandwidth(Bandwidth::gbps(80.0), Ps::from_us(1.0));
        for &(s, u) in &reqs[..TOTAL / 100] {
            black_box(o.reserve(s, u));
            black_box(r.reserve(s, u));
        }
    }

    let mut oracle = HashMapOracle::from_bandwidth(Bandwidth::gbps(80.0), Ps::from_us(1.0));
    let t0 = Instant::now();
    let mut sum_hash = 0u64;
    for &(s, u) in &reqs {
        sum_hash = sum_hash.wrapping_add(black_box(oracle.reserve(s, u)).0);
    }
    let hashmap_time = t0.elapsed();

    let mut ring = EpochBw::from_bandwidth(Bandwidth::gbps(80.0), Ps::from_us(1.0));
    let t0 = Instant::now();
    let mut sum_ring = 0u64;
    for &(s, u) in &reqs {
        sum_ring = sum_ring.wrapping_add(black_box(ring.reserve(s, u)).0);
    }
    let ring_time = t0.elapsed();

    assert_eq!(sum_ring, sum_hash, "ring and HashMap diverged inside the skew window");
    assert_eq!(ring.total_units(), oracle.total_units());
    let occ = ring.occupancy();
    assert_eq!(occ.spilled_units, 0, "workload must stay inside the window");
    assert_eq!(occ.late_reservations, 0, "workload must stay inside the window");

    let per = |d: std::time::Duration| d.as_nanos() as f64 / TOTAL as f64;
    println!("EpochBw::reserve — {TOTAL} mixed-skew reservations");
    println!(
        "  HashMap (pre-ring)   {:>8.1} ns/reservation   ({:.1} ms total)",
        per(hashmap_time),
        hashmap_time.as_secs_f64() * 1e3
    );
    println!(
        "  ring (bounded skew)  {:>8.1} ns/reservation   ({:.1} ms total)",
        per(ring_time),
        ring_time.as_secs_f64() * 1e3
    );
    let speedup = hashmap_time.as_secs_f64() / ring_time.as_secs_f64();
    println!("  speedup              {speedup:>8.1}x");

    // The batched entry point over the same hammered-start chunks: one
    // call per 64-chunk group, same placements as the per-chunk loop.
    let mut batched = EpochBw::from_bandwidth(Bandwidth::gbps(80.0), Ps::from_us(1.0));
    let t0 = Instant::now();
    let mut last = Ps::ZERO;
    for _ in 0..TOTAL / 4 / 64 {
        last = black_box(batched.reserve_many(Ps::ZERO, 64 * 256, 256)).last;
    }
    println!(
        "  reserve_many (64-chunk groups of the burst)  {:>8.1} ns/chunk   (backlog to {last})",
        t0.elapsed().as_nanos() as f64 / (TOTAL / 4 / 64 * 64) as f64
    );

    assert!(speedup >= 5.0, "ring must beat the HashMap by >= 5x on the mixed-skew workload, got {speedup:.1}x");
}
