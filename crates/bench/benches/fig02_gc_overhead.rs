//! Figure 2 — GC overhead normalized to mutator time over varying heap
//! size.
//!
//! The paper first finds each application's minimum heap (no OOM), then
//! over-provisions by 25% / 50% / 100%. Even at 2× the minimum, GC costs
//! ≥ 15% of useful work; toward the minimum the overhead explodes (up to
//! 365%). The same sweep here, on the DDR4 host baseline.

use charon_bench::{banner, pct, print_row, run};
use charon_workloads::{table3, RunOptions};

fn main() {
    banner(
        "Figure 2: GC overhead vs. heap size (DDR4 host; GC time / mutator time)",
        "paper: overhead explodes toward the minimum heap; >= 15% even at 2x",
    );
    let factors = [1.0, 1.25, 1.5, 2.0];
    print_row("workload", &factors.iter().map(|f| format!("{f:.2}x min")).collect::<Vec<_>>());

    let mut worst: f64 = 0.0;
    let mut at_2x: Vec<f64> = Vec::new();
    for spec in table3() {
        let mut cells = Vec::new();
        for f in factors {
            let r = run(&spec, "DDR4", &RunOptions { heap_factor: Some(f), ..Default::default() });
            let ov = r.gc_overhead();
            worst = worst.max(ov);
            if f == 2.0 {
                at_2x.push(ov);
            }
            cells.push(pct(ov));
        }
        print_row(spec.short, &cells);
    }
    println!("worst overhead observed: {} (paper: up to 365%)", pct(worst));
    println!("mean overhead at 2.0x min: {} (paper: >= 15%)", pct(at_2x.iter().sum::<f64>() / at_2x.len() as f64));
}
