//! Figure 17 — Energy consumption of Charon on GC compared with the host
//! CPU-only execution.
//!
//! Per-workload GC energy normalized to the DDR4 host. The paper reports
//! 60.7% average reduction vs. DDR4 and 51.6% vs. HMC: most of it from the
//! 3.29× shorter pauses (blocked host cores clock-gate), plus HMC's lower
//! per-bit energy, against Charon's modest 2.98 W of added logic.

use charon_bench::{banner, pct, print_row, run, PLATFORMS};
use charon_workloads::{table3, RunOptions};

fn main() {
    banner(
        "Figure 17: GC energy normalized to the DDR4 host (lower is better)",
        "paper: Charon saves 60.7% vs DDR4 and 51.6% vs HMC on average",
    );
    print_row("workload", &PLATFORMS.iter().take(3).map(|p| p.to_string()).collect::<Vec<_>>());

    let opts = RunOptions::default();
    let mut vs_ddr4 = Vec::new();
    let mut vs_hmc = Vec::new();
    for spec in table3() {
        let e: Vec<f64> = PLATFORMS
            .iter()
            .take(3)
            .map(|p| run(&spec, p, &opts).energy.total_j())
            .collect();
        let cells: Vec<String> = e.iter().map(|&j| pct(j / e[0])).collect();
        vs_ddr4.push(1.0 - e[2] / e[0]);
        vs_hmc.push(1.0 - e[2] / e[1]);
        print_row(spec.short, &cells);
    }
    println!(
        "average Charon energy reduction: {} vs DDR4 (paper 60.7%), {} vs HMC (paper 51.6%)",
        pct(vs_ddr4.iter().sum::<f64>() / vs_ddr4.len() as f64),
        pct(vs_hmc.iter().sum::<f64>() / vs_hmc.len() as f64),
    );
}
