//! Figure 16 — Memory-side implementation speedup over CPU-side on-chip
//! implementation.
//!
//! Charon's primitives also work attached to the host memory controller
//! (§4.6 "Charon as CPU-side Accelerator"): same MLP and algorithms, but
//! every memory request pays the off-chip path instead of cube-internal
//! TSV bandwidth. The paper measures the CPU-side variant about 37% slower
//! than the memory-side design.

use charon_bench::{banner, geomean, print_row, ratio, run};
use charon_workloads::{table3, RunOptions};

fn main() {
    banner(
        "Figure 16: memory-side Charon speedup over CPU-side Charon",
        "paper: CPU-side throughput about 37% below memory-side (ratio about 1.6x)",
    );
    print_row("workload", &["CPU-side".into(), "mem-side".to_string(), "mem/CPU".into()]);

    let opts = RunOptions::default();
    let mut ratios = Vec::new();
    for spec in table3() {
        let base = run(&spec, "DDR4", &opts).gc_time;
        let cpu = run(&spec, "Charon-CPU-side", &opts).gc_time;
        let mem = run(&spec, "Charon", &opts).gc_time;
        let r = cpu.0 as f64 / mem.0.max(1) as f64;
        ratios.push(r);
        print_row(
            spec.short,
            &[ratio(base.0 as f64 / cpu.0.max(1) as f64), ratio(base.0 as f64 / mem.0.max(1) as f64), ratio(r)],
        );
    }
    let g = geomean(&ratios);
    println!("geomean mem-side advantage: {} (CPU-side is {:.1}% slower)", ratio(g), (1.0 - 1.0 / g) * 100.0);
}
