//! Table 4 — Total area usage of Charon for whole cubes, plus the §5.3
//! power-density check, from the analytical model in `charon_core::area`
//! (the Chisel + Synopsys DC + CACTI substitute, DESIGN.md §1).

use charon_bench::banner;
use charon_core::area::report;

fn main() {
    banner(
        "Table 4: Total area usage of Charon",
        "paper: 1.9470 mm^2 total, 0.4868 mm^2 per cube, 45.1 mW/mm^2 max density",
    );
    println!("{}", report());
}
