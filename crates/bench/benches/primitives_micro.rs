//! Micro-benchmarks of the functional kernels and hot simulator paths —
//! real wall-clock performance of this library (as opposed to the other
//! bench targets, which report *simulated* time).
//!
//! Uses a plain `std::time::Instant` harness instead of criterion so the
//! workspace builds with no registry access (see README "Building
//! offline").

use charon_heap::addr::{VAddr, VRange};
use charon_heap::heap::{HeapConfig, JavaHeap};
use charon_heap::klass::KlassKind;
use charon_heap::markbitmap::{live_words_fast, live_words_naive, mark_object, MarkBitmap};
use charon_heap::mem::HeapMemory;
use charon_sim::bwres::EpochBw;
use charon_sim::cache::{AccessKind, Cache};
use charon_sim::config::HostConfig;
use charon_sim::time::{Bandwidth, Ps};
use std::hint::black_box;
use std::time::Instant;

/// Times `iters` calls of `f` after a short warmup and prints ns/iter.
fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = t0.elapsed();
    println!(
        "{name:<48} {:>10.1} ns/iter   ({iters} iters, {:.1} ms total)",
        elapsed.as_nanos() as f64 / iters as f64,
        elapsed.as_secs_f64() * 1e3,
    );
}

fn bitmaps() -> (HeapMemory, MarkBitmap, MarkBitmap, VAddr) {
    let mut mem = HeapMemory::new(VAddr(0x10000), 0x80000);
    let covered = VRange::new(VAddr(0x10000), VAddr(0x10000 + 32 * 1024 * 8));
    let beg = MarkBitmap::new(VRange::new(VAddr(0x60000), VAddr(0x68000)), covered);
    let end = MarkBitmap::new(VRange::new(VAddr(0x70000), VAddr(0x78000)), covered);
    // Alternate live/dead runs.
    let mut w = 0;
    while w + 24 < 32 * 1024 {
        mark_object(&mut mem, &beg, &end, covered.start.add_words(w), 16);
        w += 24;
    }
    (mem, beg, end, covered.start)
}

fn bench_bitmap_count() {
    let (mem, beg, end, base) = bitmaps();
    bench("live_words/4KB naive (Fig. 8 bit loop)", 20_000, || {
        black_box(live_words_naive(&mem, &beg, &end, black_box(base), base.add_words(512), false));
    });
    bench("live_words/4KB fast (subtract+popcount, §4.3)", 200_000, || {
        black_box(live_words_fast(&mem, &beg, &end, black_box(base), base.add_words(512), false));
    });
}

fn bench_cache() {
    let mut cache = Cache::new("l1", HostConfig::table2().l1d);
    let mut i = 0u64;
    bench("cache/set-associative access", 1_000_000, || {
        i = i.wrapping_add(64);
        black_box(cache.access(i % (1 << 20), AccessKind::Read));
    });
}

fn bench_epoch_bw() {
    let mut lane = EpochBw::from_bandwidth(Bandwidth::gbps(80.0), Ps::from_us(1.0));
    let mut t = 0u64;
    bench("bwres/epoch reservation (mixed skew)", 1_000_000, || {
        t = t.wrapping_add(100_000);
        black_box(lane.reserve(Ps(t % 1_000_000_000), 256));
    });
}

fn bench_alloc() {
    let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(16 << 20));
    let k = heap.klasses_mut().register_array("byte[]", KlassKind::TypeArray);
    bench("heap/alloc_eden + header init", 1_000_000, || {
        if heap.eden().free_bytes() < 4096 {
            heap.reset_young();
        }
        black_box(heap.alloc_eden(k, 62));
    });
}

fn bench_minor_gc() {
    use charon_gc::collector::Collector;
    use charon_gc::system::System;
    bench("gc/minor collection (2MB live, DDR4 timing)", 40, || {
        let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(16 << 20));
        let k = heap.klasses_mut().register_array("byte[]", KlassKind::TypeArray);
        let mut gc = Collector::new(System::ddr4(), &heap, 8);
        for i in 0..2000 {
            let a = gc.alloc(&mut heap, k, 126).expect("fits");
            if i % 4 == 0 {
                heap.add_root(a);
            }
        }
        gc.minor_gc(&mut heap);
        black_box(gc.gc_total_time());
    });
}

fn main() {
    bench_bitmap_count();
    bench_cache();
    bench_epoch_bw();
    bench_alloc();
    bench_minor_gc();
}
