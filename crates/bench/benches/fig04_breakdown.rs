//! Figure 4 — Runtime breakdown of GC (MinorGC and MajorGC) on the host
//! baseline.
//!
//! The paper's key observation (§3.2): a handful of primitives dominate —
//! Search + Scan&Push + Copy cover 71.4% (Spark) / 78.2% (GraphChi) of
//! MinorGC, and Scan&Push + Bitmap Count + Copy cover 74.1% / 79.1% of
//! MajorGC. The offloadable-fraction column is the coverage Charon's
//! primitive selection rests on.

use charon_bench::{banner, pct, print_row, run};
use charon_gc::breakdown::{Breakdown, Bucket};
use charon_workloads::{table3, Framework, RunOptions};

fn print_table(kind: &str, get: impl Fn(&charon_workloads::RunResult) -> Breakdown) {
    println!();
    println!(
        "Figure 4{}: {kind} runtime breakdown (DDR4 host, fraction of GC time)",
        if kind == "MinorGC" { "a" } else { "b" }
    );
    let cols: Vec<String> = Bucket::ALL
        .iter()
        .map(|b| b.to_string())
        .chain(["offloadable".into()])
        .collect();
    print_row("workload", &cols);

    // A slightly tighter heap than the default so every workload reaches a
    // MajorGC within the run (the paper's heaps are 1.25-2x the minimum).
    let opts = RunOptions { heap_factor: Some(1.25), ..Default::default() };
    let mut frameworks: Vec<(Framework, Vec<f64>)> = vec![(Framework::Spark, vec![]), (Framework::GraphChi, vec![])];
    for spec in table3() {
        let r = run(&spec, "DDR4", &opts);
        let bd = get(&r);
        let mut cells: Vec<String> = Bucket::ALL.iter().map(|&b| pct(bd.fraction(b))).collect();
        cells.push(pct(bd.offloadable_fraction()));
        print_row(spec.short, &cells);
        for (fw, v) in &mut frameworks {
            if *fw == spec.framework {
                v.push(bd.offloadable_fraction());
            }
        }
    }
    for (fw, v) in frameworks {
        let avg = v.iter().sum::<f64>() / v.len() as f64;
        println!("{fw} average offloadable fraction: {}", pct(avg));
    }
}

fn main() {
    banner(
        "Figure 4: Runtime breakdown of GC",
        "paper: MinorGC offloadable 71.42% (Spark) / 78.23% (GraphChi); MajorGC 74.13% / 79.06%",
    );
    print_table("MinorGC", |r| r.minor_breakdown);
    print_table("MajorGC", |r| r.major_breakdown);
}
