//! Device edge cases: degenerate offloads, cross-cube extremes, and the
//! structure-mode matrix.

use charon_core::device::{CharonDevice, Placement, ScanAction, ScanRef, StructureMode};
use charon_core::PrimType;
use charon_heap::VAddr;
use charon_sim::config::SystemConfig;
use charon_sim::host::HostTiming;
use charon_sim::time::Ps;

fn setup(structure: StructureMode) -> (HostTiming, CharonDevice) {
    let cfg = SystemConfig::table2_hmc();
    (HostTiming::new(&cfg), CharonDevice::new(&cfg, Placement::MemorySide, structure))
}

#[test]
fn minimum_size_offloads_complete() {
    let (mut host, mut dev) = setup(StructureMode::Table4);
    let t1 = dev
        .offload_copy(&mut host, Ps::ZERO, VAddr(0x1000), VAddr(0x2000), 8)
        .expect("routed cube has units");
    assert!(t1 > Ps::ZERO);
    let t2 = dev
        .offload_search(&mut host, t1, VAddr(0x3000), 8)
        .expect("routed cube has units");
    assert!(t2 > t1);
    let t3 = dev
        .offload_bitmap_count(&mut host, t2, &[(VAddr(0x4000), 8)])
        .expect("routed cube has units");
    assert!(t3 > t2);
    let t4 = dev
        .offload_scan_push(&mut host, t3, VAddr(0x5000), 8, &[])
        .expect("routed cube has units");
    assert!(t4 > t3, "an empty reference list still loads the fields");
    assert_eq!(dev.stats().total_offloads(), 4);
}

#[test]
fn copy_spanning_every_cube_still_completes() {
    let (mut host, mut dev) = setup(StructureMode::Table4);
    let page = 1u64 << SystemConfig::table2_hmc().hmc.cube_interleave_bits;
    // A copy whose source range crosses all four cubes.
    let bytes = 4 * page;
    let t = dev
        .offload_copy(&mut host, Ps::ZERO, VAddr(0), VAddr(8 * page), bytes)
        .expect("routed cube has units");
    let gbps = 2.0 * bytes as f64 / t.as_secs() / 1e9;
    assert!(gbps > 30.0, "cross-cube copy unreasonably slow: {gbps:.1} GB/s");
    assert!(host.fabric.stats().intercube.total_bytes() > 0, "remote chunks must cross spokes");
}

#[test]
fn every_structure_mode_serves_all_primitives() {
    for structure in [StructureMode::Table4, StructureMode::Unified, StructureMode::Distributed] {
        let (mut host, mut dev) = setup(structure);
        dev.offload_copy(&mut host, Ps::ZERO, VAddr(0x1000), VAddr(0x9000), 4096)
            .expect("routed cube has units");
        dev.offload_search(&mut host, Ps::ZERO, VAddr(0x2000), 2048)
            .expect("routed cube has units");
        dev.offload_bitmap_count(&mut host, Ps::ZERO, &[(VAddr(0x3000), 64), (VAddr(0x7000), 64)])
            .expect("routed cube has units");
        dev.offload_scan_push(
            &mut host,
            Ps::ZERO,
            VAddr(0x4000),
            64,
            &[ScanRef { referent: VAddr(0x5000), action: ScanAction::None }],
        )
        .expect("routed cube has units");
        for p in PrimType::ALL {
            assert_eq!(dev.stats().prim(p).offloads, 1, "{structure:?} {p}");
        }
        assert!(dev.total_unit_busy() > Ps::ZERO);
    }
}

#[test]
fn distributed_tlb_has_no_remote_lookups_for_local_streams() {
    let (mut host, mut dev) = setup(StructureMode::Distributed);
    // A copy entirely within cube 0's first page.
    dev.offload_copy(&mut host, Ps::ZERO, VAddr(0), VAddr(0x10000), 32 * 1024)
        .expect("routed cube has units");
    let (lookups, remote) = dev.tlb_stats();
    assert!(lookups > 0);
    assert_eq!(remote, 0, "VA-routed distributed slices never cross links");
}

#[test]
fn unified_tlb_pays_for_offcenter_units() {
    let (mut host, mut dev) = setup(StructureMode::Unified);
    let page = 1u64 << SystemConfig::table2_hmc().hmc.cube_interleave_bits;
    // Unit scheduled on cube 1 (source there), translating via cube 0.
    dev.offload_copy(&mut host, Ps::ZERO, VAddr(page), VAddr(page + 0x10000), 32 * 1024)
        .expect("routed cube has units");
    let (lookups, remote) = dev.tlb_stats();
    assert!(lookups > 0);
    assert!(remote > 0, "off-center units must reach the unified TLB over links");
}

#[test]
fn stats_bytes_account_for_payloads() {
    let (mut host, mut dev) = setup(StructureMode::Table4);
    dev.offload_copy(&mut host, Ps::ZERO, VAddr(0x1000), VAddr(0x2_0000), 10_000)
        .expect("routed cube has units");
    assert_eq!(dev.stats().prim(PrimType::Copy).bytes, 20_000, "copy counts read+write");
    dev.offload_search(&mut host, Ps::ZERO, VAddr(0x8000), 4096)
        .expect("routed cube has units");
    assert_eq!(dev.stats().prim(PrimType::Search).bytes, 4096);
}

#[test]
fn responses_unblock_in_submission_order_per_unit_saturation() {
    // Hammer one cube's copy units; completion times must be
    // non-decreasing with submission order under saturation.
    let (mut host, mut dev) = setup(StructureMode::Table4);
    let mut last = Ps::ZERO;
    for i in 0..16u64 {
        let t = dev
            .offload_copy(&mut host, Ps::ZERO, VAddr(i * 8192), VAddr(0x40_0000 + i * 8192), 8192)
            .expect("routed cube has units");
        assert!(t >= last, "offload {i} finished before its predecessor");
        last = t;
    }
}

#[test]
fn bitmap_count_never_probes_host_caches() {
    // §4.1/§4.5: "no clflush is necessary while executing Bitmap Count"
    // because the host never writes the bitmaps during the phase.
    let (mut host, mut dev) = setup(StructureMode::Table4);
    // Dirty a host line inside the bitmap span.
    host.mem_access(0, Ps::ZERO, 0x4000, 8, charon_sim::cache::AccessKind::Write);
    let flushed_before = host.cache_stats().0.flushed + host.cache_stats().1.flushed + host.cache_stats().2.flushed;
    dev.offload_bitmap_count(&mut host, Ps::from_us(1.0), &[(VAddr(0x4000), 64)])
        .expect("routed cube has units");
    let s = host.cache_stats();
    let flushed_after = s.0.flushed + s.1.flushed + s.2.flushed;
    assert_eq!(flushed_before, flushed_after, "Bitmap Count must not clflush");

    // Copy, in contrast, probes its ranges.
    dev.offload_copy(&mut host, Ps::from_us(2.0), VAddr(0x4000), VAddr(0x9000), 64)
        .expect("routed cube has units");
    let s = host.cache_stats();
    assert!(s.0.flushed + s.1.flushed + s.2.flushed > flushed_after, "Copy must clflush");
}

#[test]
fn bulk_flush_cost_matches_paper_estimate() {
    // §4.6: flushing a 24 MB LLC takes ~300 us at 80 GB/s. Our Table 2 LLC
    // is 8 MB, so a fully-dirty hierarchy drains in roughly a third of
    // that over the same link.
    let cfg = SystemConfig::table2_hmc();
    let mut host = HostTiming::new(&cfg);
    // Dirty a large footprint.
    let mut now = Ps::ZERO;
    for i in 0..200_000u64 {
        now = host.mem_access((i % 8) as usize, now, i * 64, 8, charon_sim::cache::AccessKind::Write);
    }
    let (_, dirty, done) = host.flush_all_caches(now);
    assert!(dirty > 100_000, "hierarchy should be mostly dirty: {dirty}");
    let flush_time = done - now;
    // dirty * 64 B at 80 GB/s.
    let expect = charon_sim::time::Bandwidth::gbps(80.0).transfer_time(dirty * 64);
    assert_eq!(flush_time, expect);
    assert!(flush_time < Ps::from_us(300.0), "well under the paper's 24 MB figure");
}

#[test]
fn general_component_energy_is_negligible() {
    // §5.3: queues + TLB + bitmap cache contribute at most a few percent
    // of Charon's energy (the paper measures a 3.18% maximum on ALS).
    let (mut host, mut dev) = setup(StructureMode::Table4);
    // A realistic mix: big copies, searches, bitmap scans, object scans.
    for i in 0..24u64 {
        dev.offload_copy(&mut host, Ps::ZERO, VAddr(i * 65536), VAddr(0x100_0000 + i * 65536), 48 * 1024)
            .expect("routed cube has units");
    }
    dev.offload_search(&mut host, Ps::ZERO, VAddr(0x8000), 32 * 1024)
        .expect("routed cube has units");
    for i in 0..64u64 {
        dev.offload_bitmap_count(&mut host, Ps::ZERO, &[(VAddr(0x20_0000 + i * 64), 64)])
            .expect("routed cube has units");
    }
    let e = dev.component_energy();
    assert!(e.total_pj() > 0.0);
    let general = e.general_fraction();
    assert!(general < 0.05, "general components should be negligible (paper max 3.18%), got {:.2}%", general * 100.0);
    assert!(general > 0.0, "but not zero — the structures do switch");
}
