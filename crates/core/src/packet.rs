//! The host↔Charon offload interface (§4.1).
//!
//! Two intrinsics exist. `initialize()` is called once at program launch
//! and writes the globally accessed addresses (heap base, bitmap base and
//! the begin→end map `OFFSET`, card-table base) into memory-mapped unit
//! registers. `offload()` ships one primitive:
//!
//! ```text
//! val offload(val type, addr src, addr dst, val arg)
//! ```
//!
//! The request packet is **48 bytes**: 16 B of standard HMC header/tail
//! (including the destination cube id), a 4-bit primitive type, two 8-byte
//! addresses, and up to 124 bits of extra operands. The response packet is
//! **32 bytes** when it carries a return value and **16 bytes** otherwise.

use charon_heap::addr::VAddr;
use std::fmt;

/// Size of every offload request packet, bytes.
pub const REQUEST_BYTES: u32 = 48;
/// Response size when a value is returned (Search's found-address,
/// Bitmap Count's word count).
pub const RESPONSE_WITH_VALUE_BYTES: u32 = 32;
/// Response size when no value is returned (Copy, Scan&Push).
pub const RESPONSE_EMPTY_BYTES: u32 = 16;
/// Size of the NACK control packet a cube returns when its command queue
/// cannot accept a request (fault campaigns only): bare header/tail, no
/// payload. Silent failures — a dropped packet, a wedged unit — produce
/// no packet at all; the host only learns of those through its timeout.
pub const RESPONSE_NACK_BYTES: u32 = 16;
/// HMC header/tail bytes inside the request.
pub const HEADER_TAIL_BYTES: u32 = 16;
/// Bits available for extra operands.
pub const EXTRA_OPERAND_BITS: u32 = 124;

/// The offloaded primitive, encoded in 4 bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum PrimType {
    /// Bulk object/region copy (MinorGC copy/promotion, MajorGC compaction).
    Copy = 0,
    /// Dirty-card search over a card-table range (MinorGC).
    Search = 1,
    /// Object-graph scan: load referents, push unmarked ones (both GCs).
    ScanPush = 2,
    /// `live_words_in_range` over the begin/end bitmaps (MajorGC).
    BitmapCount = 3,
}

impl PrimType {
    /// All primitive types.
    pub const ALL: [PrimType; 4] = [PrimType::Copy, PrimType::Search, PrimType::ScanPush, PrimType::BitmapCount];

    /// The 4-bit wire encoding.
    pub fn encode(self) -> u8 {
        self as u8
    }

    /// Decodes the 4-bit wire value.
    ///
    /// # Errors
    ///
    /// Returns `None` for undefined encodings.
    pub fn decode(v: u8) -> Option<PrimType> {
        match v {
            0 => Some(PrimType::Copy),
            1 => Some(PrimType::Search),
            2 => Some(PrimType::ScanPush),
            3 => Some(PrimType::BitmapCount),
            _ => None,
        }
    }

    /// Whether this primitive's response carries a return value
    /// (determines the response packet size, §4.1).
    pub fn returns_value(self) -> bool {
        matches!(self, PrimType::Search | PrimType::BitmapCount)
    }

    /// The response packet size for this primitive.
    pub fn response_bytes(self) -> u32 {
        if self.returns_value() {
            RESPONSE_WITH_VALUE_BYTES
        } else {
            RESPONSE_EMPTY_BYTES
        }
    }

    /// Stable static name (telemetry event labels; matches [`fmt::Display`]).
    pub fn name(self) -> &'static str {
        match self {
            PrimType::Copy => "Copy",
            PrimType::Search => "Search",
            PrimType::ScanPush => "Scan&Push",
            PrimType::BitmapCount => "Bitmap Count",
        }
    }
}

impl fmt::Display for PrimType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One offload request, as the host's intrinsic builds it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffloadRequest {
    /// Which primitive.
    pub prim: PrimType,
    /// First address operand (copy source / search start / object /
    /// bitmap-range start).
    pub src: VAddr,
    /// Second address operand (copy destination / search end / metadata /
    /// bitmap-range end).
    pub dst: VAddr,
    /// Extra operand (size, flags…), ≤ 124 bits.
    pub arg: u64,
}

impl OffloadRequest {
    /// Serialized wire size — always [`REQUEST_BYTES`].
    pub fn wire_bytes(&self) -> u32 {
        REQUEST_BYTES
    }

    /// Payload bits actually carried: type + two addresses + arg, which
    /// must fit beside the 16 B header/tail in the 48 B packet.
    pub fn payload_bits(&self) -> u32 {
        4 + 64 + 64 + EXTRA_OPERAND_BITS
    }
}

/// One offload response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffloadResponse {
    /// Return value, present for value-bearing primitives.
    pub value: Option<u64>,
}

impl OffloadResponse {
    /// Serialized wire size: 32 B with a value, 16 B without.
    pub fn wire_bytes(&self) -> u32 {
        if self.value.is_some() {
            RESPONSE_WITH_VALUE_BYTES
        } else {
            RESPONSE_EMPTY_BYTES
        }
    }
}

/// The constants `initialize()` ships to every cube's memory-mapped
/// registers at program launch (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InitializeParams {
    /// Heap base address.
    pub heap_base: VAddr,
    /// Begin-bitmap base address.
    pub beg_map_base: VAddr,
    /// The static begin→end map offset (Fig. 8 line 3).
    pub bitmap_offset: u64,
    /// Card-table base address.
    pub card_table_base: VAddr,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prim_type_fits_four_bits() {
        for p in PrimType::ALL {
            assert!(p.encode() < 16);
            assert_eq!(PrimType::decode(p.encode()), Some(p));
        }
        assert_eq!(PrimType::decode(9), None);
    }

    #[test]
    fn packet_sizes_match_paper() {
        let req = OffloadRequest { prim: PrimType::Copy, src: VAddr(0), dst: VAddr(0), arg: 0 };
        assert_eq!(req.wire_bytes(), 48);
        // Payload must fit in 48 B minus 16 B header/tail.
        assert!(req.payload_bits() <= (REQUEST_BYTES - HEADER_TAIL_BYTES) * 8);

        assert_eq!(OffloadResponse { value: Some(7) }.wire_bytes(), 32);
        assert_eq!(OffloadResponse { value: None }.wire_bytes(), 16);
    }

    #[test]
    fn value_bearing_prims() {
        assert!(PrimType::Search.returns_value());
        assert!(PrimType::BitmapCount.returns_value());
        assert!(!PrimType::Copy.returns_value());
        assert!(!PrimType::ScanPush.returns_value());
        assert_eq!(PrimType::Copy.response_bytes(), 16);
        assert_eq!(PrimType::Search.response_bytes(), 32);
    }

    #[test]
    fn display_names() {
        assert_eq!(PrimType::ScanPush.to_string(), "Scan&Push");
        assert_eq!(PrimType::BitmapCount.to_string(), "Bitmap Count");
    }
}
