//! Primitive-to-cube scheduling (§4.2–4.4).
//!
//! *Copy* and *Search* are scheduled to the cube housing the copy source /
//! search start, and *Bitmap Count* to the cube owning the bitmap range —
//! all to exploit the cube's internal TSV bandwidth. *Scan&Push* always
//! runs on the central cube: its referent loads are scattered across all
//! cubes, and the center minimizes expected hop count and link usage.

use crate::packet::PrimType;
use charon_heap::addr::VAddr;
use charon_sim::config::HmcConfig;

/// The placement policy.
#[derive(Debug, Clone, PartialEq)]
pub struct Scheduler {
    hmc: HmcConfig,
}

impl Scheduler {
    /// Builds the policy over the HMC interleaving configuration.
    pub fn new(hmc: HmcConfig) -> Scheduler {
        Scheduler { hmc }
    }

    /// The central cube of the star.
    pub const CENTER: usize = 0;

    /// Which cube a primitive with first address operand `src` runs on.
    pub fn cube_for(&self, prim: PrimType, src: VAddr) -> usize {
        match prim {
            PrimType::Copy | PrimType::Search | PrimType::BitmapCount => self.hmc.cube_of(src.0),
            PrimType::ScanPush => Self::CENTER,
        }
    }

    /// The cube owning an arbitrary address (for locality accounting).
    pub fn cube_of(&self, a: VAddr) -> usize {
        self.hmc.cube_of(a.0)
    }

    /// Where retry `attempt` of a failed offload routes its request.
    /// Attempt 0 is the normal [`Scheduler::cube_for`] placement; later
    /// attempts rotate around the star so a request suspected of dying on
    /// one link travels a different path. Only the request's *transport*
    /// is re-routed — a retry that succeeds executes on the normally
    /// scheduled cube, where the primitive's operands live.
    pub fn cube_for_attempt(&self, prim: PrimType, src: VAddr, attempt: u32) -> usize {
        (self.cube_for(prim, src) + attempt as usize) % self.hmc.cubes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> Scheduler {
        Scheduler::new(HmcConfig::table2())
    }

    #[test]
    fn copy_runs_at_source_cube() {
        let s = sched();
        let page = 1u64 << HmcConfig::table2().cube_interleave_bits;
        assert_eq!(s.cube_for(PrimType::Copy, VAddr(0)), 0);
        assert_eq!(s.cube_for(PrimType::Copy, VAddr(page)), 1);
        assert_eq!(s.cube_for(PrimType::Copy, VAddr(3 * page)), 3);
        assert_eq!(s.cube_for(PrimType::Search, VAddr(2 * page)), 2);
        assert_eq!(s.cube_for(PrimType::BitmapCount, VAddr(5 * page)), 1);
    }

    #[test]
    fn scan_push_always_central() {
        let s = sched();
        let page = 1u64 << HmcConfig::table2().cube_interleave_bits;
        for k in 0..8 {
            assert_eq!(s.cube_for(PrimType::ScanPush, VAddr(k * page)), Scheduler::CENTER);
        }
    }
}
