//! Area and power model — the paper's Table 4 (Chisel + Synopsys DC at
//! TSMC 40 nm, plus CACTI at 45 nm for the SRAM structures).
//!
//! We cannot re-synthesize RTL here, so the published per-unit areas are
//! encoded as data and the derived claims (total ≈ 1.947 mm², ≈ 0.49 mm²
//! per cube, ≈ 0.49 % of a 100 mm² logic layer, power density far below a
//! passive-heat-sink limit) are recomputed from them.

use std::fmt;

/// One row of Table 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaComponent {
    /// Component name.
    pub name: &'static str,
    /// Area per unit, mm².
    pub per_unit_mm2: f64,
    /// Number of units across all cubes.
    pub units: usize,
    /// Whether this row is a "general component" (queues, metadata, TLB,
    /// bitmap cache) as opposed to a processing unit.
    pub general: bool,
}

impl AreaComponent {
    /// Total area of this component, mm².
    pub fn total_mm2(&self) -> f64 {
        self.per_unit_mm2 * self.units as f64
    }
}

/// Table 4, verbatim.
pub const TABLE4: [AreaComponent; 9] = [
    AreaComponent { name: "Command Queue", per_unit_mm2: 0.0049, units: 4, general: true },
    AreaComponent { name: "Request Queue(R)", per_unit_mm2: 0.0015, units: 4, general: true },
    AreaComponent { name: "Request Queue(W)", per_unit_mm2: 0.0162, units: 4, general: true },
    AreaComponent { name: "Metadata Array", per_unit_mm2: 0.0805, units: 4, general: true },
    AreaComponent { name: "Bitmap Cache", per_unit_mm2: 0.1562, units: 1, general: true },
    AreaComponent { name: "TLB", per_unit_mm2: 0.0706, units: 4, general: true },
    AreaComponent { name: "Copy/Search", per_unit_mm2: 0.0223, units: 8, general: false },
    AreaComponent { name: "Bitmap Count", per_unit_mm2: 0.0427, units: 8, general: false },
    AreaComponent { name: "Scan&Push", per_unit_mm2: 0.0720, units: 8, general: false },
];

/// The derived area/power figures of §5.3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// Sum over Table 4, mm².
    pub total_mm2: f64,
    /// Average per cube (4 cubes), mm².
    pub per_cube_mm2: f64,
    /// Fraction of a 100 mm² HMC logic layer.
    pub logic_layer_fraction: f64,
    /// Average power, W (2.98 in the paper).
    pub avg_power_w: f64,
    /// Maximum power, W (4.51, for ALS).
    pub max_power_w: f64,
    /// Maximum power density, mW/mm² of logic-layer area per cube.
    pub max_power_density_mw_mm2: f64,
}

/// Logic-layer area assumed per cube, mm² (the paper cites 100 mm²).
pub const LOGIC_LAYER_MM2: f64 = 100.0;
/// Number of cubes.
pub const CUBES: usize = 4;
/// Average Charon power, W (§5.3).
pub const AVG_POWER_W: f64 = 2.98;
/// Maximum Charon power, W (§5.3, ALS).
pub const MAX_POWER_W: f64 = 4.51;
/// Maximum allowable power density for a low-end passive heat sink,
/// mW/mm² (the paper cites a heat-sink study far above Charon's density).
pub const PASSIVE_HEATSINK_LIMIT_MW_MM2: f64 = 100.0;

/// Computes the derived report from Table 4.
pub fn report() -> AreaReport {
    let total: f64 = TABLE4.iter().map(AreaComponent::total_mm2).sum();
    let per_cube = total / CUBES as f64;
    AreaReport {
        total_mm2: total,
        per_cube_mm2: per_cube,
        logic_layer_fraction: per_cube / LOGIC_LAYER_MM2,
        avg_power_w: AVG_POWER_W,
        max_power_w: MAX_POWER_W,
        // Worst case: all of the max power dissipated in one cube's logic
        // layer (the paper reports 45.1 mW/mm²).
        max_power_density_mw_mm2: MAX_POWER_W * 1000.0 / LOGIC_LAYER_MM2,
    }
}

impl fmt::Display for AreaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<18} {:>10} {:>6} {:>12}", "Component", "mm^2/unit", "units", "total mm^2")?;
        for c in TABLE4 {
            writeln!(f, "{:<18} {:>10.4} {:>6} {:>12.4}", c.name, c.per_unit_mm2, c.units, c.total_mm2())?;
        }
        writeln!(f, "Total area: {:.4} mm^2 / average per cube: {:.4} mm^2", self.total_mm2, self.per_cube_mm2)?;
        writeln!(f, "Logic-layer fraction: {:.2}%", self.logic_layer_fraction * 100.0)?;
        write!(
            f,
            "Power: avg {:.2} W, max {:.2} W, max density {:.1} mW/mm^2",
            self.avg_power_w, self.max_power_w, self.max_power_density_mw_mm2
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper() {
        let r = report();
        assert!((r.total_mm2 - 1.947).abs() < 0.001, "total = {}", r.total_mm2);
        assert!((r.per_cube_mm2 - 0.4868).abs() < 0.001);
        assert!((r.logic_layer_fraction - 0.0049).abs() < 0.0002, "≈0.49%");
    }

    #[test]
    fn component_rows_match_table4() {
        let bc = TABLE4.iter().find(|c| c.name == "Bitmap Cache").unwrap();
        assert!((bc.total_mm2() - 0.1562).abs() < 1e-9);
        let sp = TABLE4.iter().find(|c| c.name == "Scan&Push").unwrap();
        assert!((sp.total_mm2() - 0.5760).abs() < 1e-9);
        let general: f64 = TABLE4.iter().filter(|c| c.general).map(AreaComponent::total_mm2).sum();
        assert!((general - (0.0196 + 0.0060 + 0.0648 + 0.3220 + 0.1562 + 0.2824)).abs() < 1e-6);
    }

    #[test]
    fn power_density_below_passive_limit() {
        let r = report();
        assert!((r.max_power_density_mw_mm2 - 45.1).abs() < 0.1);
        assert!(r.max_power_density_mw_mm2 < PASSIVE_HEATSINK_LIMIT_MW_MM2);
    }

    #[test]
    fn display_renders_table() {
        let s = report().to_string();
        assert!(s.contains("Bitmap Cache"));
        assert!(s.contains("1.9470") || s.contains("1.947"));
    }
}
