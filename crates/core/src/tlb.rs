//! The accelerator-side TLB (§4.6, "Virtual Memory and Multi-Process
//! Support").
//!
//! At launch the JVM pins the heap's huge pages (`mlock`), and Charon keeps
//! duplicate TLB entries on the DRAM side covering exactly those pages —
//! so lookups never miss. What remains to model is the lookup *port* (one
//! translation per logic-layer cycle per TLB structure) and, in the
//! **unified** design, the extra serial-link round trip that units on
//! non-central cubes pay to reach the single TLB at the center cube.
//! The **distributed** design places a slice at every cube holding only
//! its local pages' mappings; requests are routed by virtual address
//! (numa_alloc_onnode makes VA→cube static), so the destination cube's
//! slice always has the entry and no extra hops arise. Fig. 15 compares
//! the two designs.

use charon_sim::bwres::EpochBw;
use charon_sim::host::MemFabric;
use charon_sim::noc::Node;
use charon_sim::time::{Freq, Ps};

/// Metering epoch for lookup-port accounting.
const TLB_EPOCH: Ps = Ps(1_000_000); // 1 us

/// TLB lookup-packet size (a VA and a tag — one 16 B control flit each way).
const TLB_PKT_BYTES: u32 = 16;

/// Unified (single structure at the center cube) vs distributed
/// (per-cube slices) accelerator metadata structures (§4.6, Fig. 15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TlbMode {
    /// One TLB at cube 0, shared by all cubes.
    Unified,
    /// A slice per cube, holding only local-page mappings.
    Distributed,
}

/// The accelerator TLB structure(s).
#[derive(Debug, Clone)]
pub struct AccelTlb {
    mode: TlbMode,
    /// Lookup port per structure (`[0]` only, when unified).
    ports: Vec<EpochBw>,
    entries_per_cube: usize,
    lookups: u64,
    remote_lookups: u64,
    unserviceable_misses: u64,
}

impl AccelTlb {
    /// Builds the TLB(s) for `cubes` cubes with the given per-cube entry
    /// count and logic-layer clock.
    pub fn new(mode: TlbMode, cubes: usize, entries_per_cube: usize, unit_freq: Freq) -> AccelTlb {
        let ports = match mode {
            TlbMode::Unified => 1,
            TlbMode::Distributed => cubes,
        };
        AccelTlb {
            mode,
            ports: (0..ports)
                .map(|_| EpochBw::from_period(unit_freq.period(), TLB_EPOCH))
                .collect(),
            entries_per_cube,
            lookups: 0,
            remote_lookups: 0,
            unserviceable_misses: 0,
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> TlbMode {
        self.mode
    }

    /// Entries per cube (pinned huge pages covered; no misses by
    /// construction).
    pub fn entries_per_cube(&self) -> usize {
        self.entries_per_cube
    }

    /// `(total_lookups, lookups_that_crossed_a_link)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.lookups, self.remote_lookups)
    }

    /// Records an injected unserviceable miss: the duplicate-entry
    /// invariant (pinned huge pages, mappings never miss) was violated
    /// for this request, and the offload it belonged to cannot complete.
    /// The host recovers through its timeout; no port cycle is metered.
    pub fn record_unserviceable(&mut self) {
        self.unserviceable_misses += 1;
    }

    /// Injected unserviceable misses so far.
    pub fn unserviceable_misses(&self) -> u64 {
        self.unserviceable_misses
    }

    /// Translates one request issued by a unit on `from_cube` destined for
    /// `dest_cube` at `now`; returns when the physical address is
    /// available. Port contention serializes lookups on the same
    /// structure; the unified design adds link hops for non-central units.
    pub fn translate(&mut self, fabric: &mut MemFabric, from_cube: usize, dest_cube: usize, now: Ps) -> Ps {
        self.lookups += 1;
        match self.mode {
            TlbMode::Unified => {
                // Reach the center cube's TLB.
                let at_tlb = if from_cube == 0 {
                    now
                } else {
                    self.remote_lookups += 1;
                    fabric.control_packet(Node::Cube(from_cube), Node::Cube(0), TLB_PKT_BYTES, now)
                };
                let done = self.ports[0].reserve(at_tlb, 1);
                if from_cube == 0 {
                    done
                } else {
                    fabric.control_packet(Node::Cube(0), Node::Cube(from_cube), TLB_PKT_BYTES, done)
                }
            }
            TlbMode::Distributed => {
                // The destination cube's slice holds the mapping; requests
                // are VA-routed, so translation overlaps the trip with no
                // extra hops.
                let slice = dest_cube;
                let done = self.ports[slice].reserve(now, 1);
                if slice != from_cube {
                    self.remote_lookups += 1;
                }
                done
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charon_sim::config::SystemConfig;

    fn fabric() -> MemFabric {
        MemFabric::new(&SystemConfig::table2_hmc())
    }

    #[test]
    fn distributed_local_lookup_costs_one_cycle() {
        let mut f = fabric();
        let mut t = AccelTlb::new(TlbMode::Distributed, 4, 32, Freq::ghz(1.0));
        let done = t.translate(&mut f, 2, 2, Ps::ZERO);
        assert_eq!(done, Ps::from_ns(1.0));
        assert_eq!(t.stats(), (1, 0));
    }

    #[test]
    fn unified_remote_lookup_pays_link_round_trip() {
        let mut f = fabric();
        let mut t = AccelTlb::new(TlbMode::Unified, 4, 32, Freq::ghz(1.0));
        let local = t.translate(&mut f, 0, 0, Ps::ZERO);
        assert_eq!(local, Ps::from_ns(1.0));
        let remote = t.translate(&mut f, 3, 3, Ps::ZERO);
        // ≥ two 3 ns traversals + serialization + port.
        assert!(remote > Ps::from_ns(6.0), "remote unified lookup too fast: {remote}");
        assert_eq!(t.stats(), (2, 1));
    }

    #[test]
    fn unified_port_serializes_all_cubes() {
        let mut f = fabric();
        let mut t = AccelTlb::new(TlbMode::Unified, 4, 32, Freq::ghz(1.0));
        let a = t.translate(&mut f, 0, 0, Ps::ZERO);
        let b = t.translate(&mut f, 0, 0, Ps::ZERO);
        assert_eq!(b - a, Ps::from_ns(1.0));
    }

    #[test]
    fn distributed_slices_do_not_contend() {
        let mut f = fabric();
        let mut t = AccelTlb::new(TlbMode::Distributed, 4, 32, Freq::ghz(1.0));
        let a = t.translate(&mut f, 0, 0, Ps::ZERO);
        let b = t.translate(&mut f, 1, 1, Ps::ZERO);
        assert_eq!(a, b, "independent slices must serve in parallel");
    }
}
