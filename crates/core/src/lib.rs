//! # charon-core — the Charon near-memory GC accelerator
//!
//! The paper's primary contribution (§4): specialized processing units in
//! the logic layer of each HMC cube that execute the dominant GC primitives
//! with massive memory-level parallelism against the stacked DRAM's
//! internal bandwidth.
//!
//! * [`packet`] — the host↔Charon offload packet format (§4.1: 48 B
//!   requests, 16/32 B responses, 4-bit primitive type),
//! * [`mai`] — the Memory Access Interface: the per-cube request buffer
//!   that bounds in-flight requests (the accelerator's MSHR analog),
//! * [`tlb`] — the accelerator-side TLB over pinned huge pages, in unified
//!   (center-cube) or distributed (per-cube slice) form (§4.6),
//! * [`bitmap_cache`] — the 8 KB write-back cache dedicated to mark-bitmap
//!   accesses, shared by Bitmap Count and Scan&Push (§4.5),
//! * [`sched`] — primitive-to-cube placement: Copy/Search/Bitmap Count run
//!   on the cube owning their source address, Scan&Push on the central
//!   cube (§4.2–4.4),
//! * [`units`] — the three processing-unit timing models,
//! * [`device`] — [`device::CharonDevice`], the assembled accelerator with
//!   the `offload()` intrinsic the collector calls,
//! * [`area`] — the Table 4 area/power model (the Chisel+CACTI substitute).

pub mod area;
pub mod bitmap_cache;
pub mod device;
pub mod mai;
pub mod packet;
pub mod sched;
pub mod tlb;
pub mod units;

pub use device::{CharonDevice, Placement, StructureMode};
pub use packet::PrimType;
