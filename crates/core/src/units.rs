//! Processing-unit pools.
//!
//! Table 2 places two Copy/Search units and two Bitmap Count units on every
//! cube, and all eight Scan&Push units on the central cube. A pool meters
//! *unit-time* per cube with the same epoch accounting as every other
//! shared resource ([`charon_sim::bwres`]): an offload consumes its
//! execution duration from the cube's `units × time` capacity, so a cube
//! with both units busy pushes later offloads out — without serializing
//! the loosely-ordered GC threads against each other spuriously.

use charon_sim::bwres::EpochBw;
use charon_sim::time::Ps;
use std::fmt;

/// Metering epoch for unit-time accounting.
const UNIT_EPOCH: Ps = Ps(1_000_000); // 1 us

/// A charge was routed to a cube that has no units of this class — a
/// scheduler/placement bug, or a deliberately exotic unit layout. Carried
/// through the offload path so the caller can degrade to the host
/// software fallback instead of crashing the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoUnits {
    /// The cube the charge was routed to.
    pub cube: usize,
    /// Cubes the pool spans (valid indices are `0..cubes`, and only those
    /// with a nonzero unit count accept charges).
    pub cubes: usize,
}

impl fmt::Display for NoUnits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no units on cube {} (pool spans {} cubes)", self.cube, self.cubes)
    }
}

impl std::error::Error for NoUnits {}

/// A pool of unit instances, organized per cube.
#[derive(Debug, Clone)]
pub struct UnitPool {
    /// One unit-time meter per cube (`None` where a cube has no units).
    lanes: Vec<Option<EpochBw>>,
    units: Vec<usize>,
    busy: Ps,
    executions: u64,
    wedges: u64,
    queue_high_water: u64,
}

impl UnitPool {
    /// Creates a pool with `per_cube[c]` instances on cube `c`.
    ///
    /// # Panics
    ///
    /// Panics if every cube has zero instances.
    pub fn new(per_cube: &[usize]) -> UnitPool {
        assert!(per_cube.iter().any(|&n| n > 0), "pool needs at least one unit");
        UnitPool {
            lanes: per_cube
                .iter()
                .map(|&n| (n > 0).then(|| EpochBw::new(n as f64 * 1e12, UNIT_EPOCH)))
                .collect(),
            units: per_cube.to_vec(),
            busy: Ps::ZERO,
            executions: 0,
            wedges: 0,
            queue_high_water: 0,
        }
    }

    /// Evenly spreads `total` units over `cubes` cubes (Table 2's
    /// "2 units per cube").
    pub fn spread(total: usize, cubes: usize) -> UnitPool {
        let base = total / cubes;
        let extra = total % cubes;
        let per: Vec<usize> = (0..cubes).map(|c| base + usize::from(c < extra)).collect();
        UnitPool::new(&per)
    }

    /// Places all `total` units on `cube` (Table 2's Scan&Push layout).
    pub fn concentrated(total: usize, cubes: usize, cube: usize) -> UnitPool {
        let per: Vec<usize> = (0..cubes).map(|c| if c == cube { total } else { 0 }).collect();
        UnitPool::new(&per)
    }

    /// Units available on `cube`.
    pub fn units_on(&self, cube: usize) -> usize {
        self.units.get(cube).copied().unwrap_or(0)
    }

    /// Charges one execution of `dur` starting at `start` against `cube`'s
    /// unit-time; returns when the execution's service completes (equal to
    /// `start + dur` when the cube has spare unit-time, later when its
    /// units are saturated).
    ///
    /// # Panics
    ///
    /// Panics if the cube has no units of this kind (including an
    /// out-of-range cube index). Fallible callers — the device offload
    /// path, which must degrade a misrouted offload to the host software
    /// fallback rather than abort the simulation — use
    /// [`UnitPool::try_charge`].
    pub fn charge(&mut self, cube: usize, start: Ps, dur: Ps) -> Ps {
        self.try_charge(cube, start, dur).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`UnitPool::charge`], but reports a cube with no units of
    /// this class — an out-of-range index included — as a typed
    /// [`NoUnits`] error instead of panicking, leaving the pool's
    /// accounting untouched.
    ///
    /// # Errors
    ///
    /// [`NoUnits`] when `cube` is out of range or has a zero unit count.
    pub fn try_charge(&mut self, cube: usize, start: Ps, dur: Ps) -> Result<Ps, NoUnits> {
        let lane = match self.lanes.get_mut(cube) {
            Some(Some(lane)) => lane,
            _ => return Err(NoUnits { cube, cubes: self.units.len() }),
        };
        self.busy += dur;
        self.executions += 1;
        let served = lane.reserve(start, dur.0.max(1));
        // Queue-depth proxy: how many service quanta of this size were
        // already ahead of us, inferred from the queueing delay.
        let delay = served.saturating_sub(start + dur);
        let depth = delay.0.div_ceil(dur.0.max(1));
        self.queue_high_water = self.queue_high_water.max(depth);
        Ok(served)
    }

    /// Cubes the pool spans (including cubes with zero units).
    pub fn cube_count(&self) -> usize {
        self.units.len()
    }

    /// Total unit-busy time accumulated.
    pub fn busy_time(&self) -> Ps {
        self.busy
    }

    /// Total unit instances across all cubes.
    pub fn total_units(&self) -> u64 {
        self.units.iter().map(|&n| n as u64).sum()
    }

    /// High-water mark of the queue-depth proxy: the most service quanta
    /// ever observed ahead of one offload at charge time (0 means no
    /// offload ever waited).
    pub fn queue_high_water(&self) -> u64 {
        self.queue_high_water
    }

    /// Executions served.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Records an injected stall/wedge: the unit accepted a request and
    /// never responded. No unit-time is charged — a wedged unit does no
    /// metered work; the cost surfaces as the requester's timeout.
    pub fn record_wedge(&mut self) {
        self.wedges += 1;
    }

    /// Injected stall/wedge events so far.
    pub fn wedges(&self) -> u64 {
        self.wedges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_matches_table2() {
        let p = UnitPool::spread(8, 4);
        for c in 0..4 {
            assert_eq!(p.units_on(c), 2);
        }
        let q = UnitPool::concentrated(8, 4, 0);
        assert_eq!(q.units_on(0), 8);
        assert_eq!(q.units_on(3), 0);
    }

    #[test]
    fn uncontended_charge_completes_at_duration() {
        let mut p = UnitPool::new(&[2]);
        let done = p.charge(0, Ps::ZERO, Ps::from_ns(100.0));
        assert!(done <= Ps::from_ns(150.0), "idle units must not queue: {done}");
    }

    #[test]
    fn saturation_pushes_service_out() {
        let mut p = UnitPool::new(&[2]);
        // Demand 4 us of unit-time instantly on a 2-unit cube (2 us/us
        // epoch capacity): the tail lands in the next epoch.
        for _ in 0..4 {
            p.charge(0, Ps::ZERO, Ps::from_us(1.0));
        }
        let tail = p.charge(0, Ps::ZERO, Ps::from_ns(10.0));
        assert!(tail >= Ps::from_us(1.0), "saturated pool must delay: {tail}");
    }

    #[test]
    fn out_of_order_charges_do_not_phantom_queue() {
        let mut p = UnitPool::new(&[2]);
        let _ = p.charge(0, Ps::from_us(0.9), Ps::from_ns(50.0));
        let early = p.charge(0, Ps::from_ns(10.0), Ps::from_ns(50.0));
        assert!(early < Ps::from_ns(200.0), "phantom queueing: {early}");
    }

    #[test]
    fn busy_time_accumulates() {
        let mut p = UnitPool::new(&[1]);
        p.charge(0, Ps::from_ns(5.0), Ps::from_ns(20.0));
        assert_eq!(p.busy_time(), Ps::from_ns(20.0));
        assert_eq!(p.executions(), 1);
        assert_eq!(p.total_units(), 1);
    }

    #[test]
    fn queue_high_water_stays_zero_without_contention() {
        let mut p = UnitPool::new(&[2]);
        p.charge(0, Ps::ZERO, Ps::from_ns(100.0));
        assert_eq!(p.queue_high_water(), 0);
    }

    #[test]
    fn queue_high_water_rises_under_saturation() {
        let mut p = UnitPool::new(&[2]);
        for _ in 0..8 {
            p.charge(0, Ps::ZERO, Ps::from_us(1.0));
        }
        assert!(p.queue_high_water() > 0, "saturated pool must record waiting quanta");
    }

    #[test]
    #[should_panic]
    fn charge_on_empty_cube_panics() {
        let mut p = UnitPool::concentrated(4, 2, 0);
        p.charge(1, Ps::ZERO, Ps::from_ns(1.0));
    }

    #[test]
    fn try_charge_reports_typed_no_units() {
        let mut p = UnitPool::concentrated(4, 2, 0);
        // A populated cube still works through the fallible path.
        assert!(p.try_charge(0, Ps::ZERO, Ps::from_ns(1.0)).is_ok());
        // An empty cube and an out-of-range cube are both typed errors.
        let e = p.try_charge(1, Ps::ZERO, Ps::from_ns(1.0)).unwrap_err();
        assert_eq!(e, NoUnits { cube: 1, cubes: 2 });
        let e = p.try_charge(7, Ps::ZERO, Ps::from_ns(1.0)).unwrap_err();
        assert_eq!(e, NoUnits { cube: 7, cubes: 2 });
        assert_eq!(e.to_string(), "no units on cube 7 (pool spans 2 cubes)");
        // Failed charges never touch the accounting.
        assert_eq!(p.executions(), 1);
        assert_eq!(p.busy_time(), Ps::from_ns(1.0));
    }
}
