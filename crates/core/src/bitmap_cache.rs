//! The dedicated bitmap cache (§4.5).
//!
//! An 8 KB, 8-way, 32 B-block write-back cache serving only mark-bitmap
//! accesses, used by the Bitmap Count unit (reads) and the Scan&Push unit's
//! `mark_obj` read-modify-writes during MajorGC marking. Without it, every
//! 8 B bitmap word would over-fetch a 16 B HMC minimum-granularity access.
//! The cache is flushed after each MajorGC phase for coherence.
//!
//! The default (Table 4) design is **unified**: one cache at the central
//! cube. The **distributed** alternative of §4.6 gives every cube a slice
//! holding only its local bitmap data ("owner cache"); Fig. 15 compares
//! scalability of the two.

use charon_sim::bwres::EpochBw;
use charon_sim::cache::{AccessKind, Cache};
use charon_sim::config::CacheConfig;
use charon_sim::dram::DramOp;
use charon_sim::host::MemFabric;
use charon_sim::noc::Node;
use charon_sim::stats::CacheStats;
use charon_sim::time::{Freq, Ps};

/// Metering epoch for lookup-port accounting.
const PORT_EPOCH: Ps = Ps(1_000_000); // 1 us

/// Unified vs distributed placement of a shared accelerator structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SliceMode {
    /// One instance on the central cube.
    Unified,
    /// One slice per cube, holding only locally-homed data.
    Distributed,
}

/// The bitmap cache structure(s).
#[derive(Debug, Clone)]
pub struct BitmapCache {
    mode: SliceMode,
    slices: Vec<Cache>,
    ports: Vec<EpochBw>,
    /// When true the (single) cache sits beside the host memory controller
    /// (the CPU-side accelerator of Fig. 16): no cube links on lookups, but
    /// fills pay the full off-chip path.
    attach_host: bool,
}

impl BitmapCache {
    /// Builds the cache(s) from the Table 2 geometry.
    pub fn new(mode: SliceMode, cubes: usize, geometry: CacheConfig, unit_freq: Freq) -> BitmapCache {
        let n = match mode {
            SliceMode::Unified => 1,
            SliceMode::Distributed => cubes,
        };
        BitmapCache {
            mode,
            slices: (0..n).map(|_| Cache::new("bitmap$", geometry)).collect(),
            ports: (0..n).map(|_| EpochBw::from_period(unit_freq.period(), PORT_EPOCH)).collect(),
            attach_host: false,
        }
    }

    /// Builds a single cache attached to the host memory controller
    /// (the CPU-side accelerator placement of Fig. 16).
    pub fn new_host_side(geometry: CacheConfig, unit_freq: Freq) -> BitmapCache {
        let mut bc = BitmapCache::new(SliceMode::Unified, 1, geometry, unit_freq);
        bc.attach_host = true;
        bc
    }

    /// The placement mode.
    pub fn mode(&self) -> SliceMode {
        self.mode
    }

    /// Aggregate hit/miss statistics (the paper reports ≈ 90 % hits).
    pub fn stats(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for c in &self.slices {
            s += c.stats();
        }
        s
    }

    /// Which cube hosts the slice responsible for bitmap address `addr`.
    fn slice_cube(&self, fabric: &MemFabric, addr: u64) -> usize {
        match self.mode {
            SliceMode::Unified => 0,
            SliceMode::Distributed => fabric.cube_of(addr).unwrap_or(0),
        }
    }

    /// One bitmap access (8 B word or RMW) by a unit on `from_cube`,
    /// starting at `now`; returns data-ready time. Misses fill a 32 B block
    /// from the owning cube's vaults; dirty victims write back off the
    /// critical path.
    pub fn access(&mut self, fabric: &mut MemFabric, from_cube: usize, addr: u64, kind: AccessKind, now: Ps) -> Ps {
        let (home_node, from_node, slice_idx) = if self.attach_host {
            (Node::Host, Node::Host, 0)
        } else {
            let home = self.slice_cube(fabric, addr);
            let idx = if self.mode == SliceMode::Unified { 0 } else { home };
            (Node::Cube(home), Node::Cube(from_cube), idx)
        };

        // Reach the slice.
        let at = if from_node == home_node { now } else { fabric.control_packet(from_node, home_node, 16, now) };
        // One lookup per cycle per slice.
        let mut done = self.ports[slice_idx].reserve(at, 1);

        let cache = &mut self.slices[slice_idx];
        let block = cache.block_base(addr);
        let block_bytes = cache.config().block_bytes as u32;
        let res = cache.access(block, kind);
        if !res.hit {
            // Fill 32 B from DRAM (local to the slice's cube under the
            // distributed design; the full off-chip path when host-attached).
            done = fabric.access(home_node, block, block_bytes, DramOp::Read, done);
        }
        if let Some(victim) = res.writeback {
            // Write-back off the critical path.
            fabric.access(home_node, victim, block_bytes, DramOp::Write, done);
        }
        // Data returns to the requesting unit.
        if from_node == home_node {
            done
        } else {
            fabric.control_packet(home_node, from_node, 32, done)
        }
    }

    /// A range-granular lookup, as the Bitmap Count unit performs it: one
    /// request/response exchange with the owning slice covers the whole
    /// span; inside the slice each 32 B block pays the port and, on a
    /// miss, a vault fill (fills overlap — the unit issued the exact read
    /// set up front, §4.3). Returns when the span's data is at the unit.
    pub fn access_range(
        &mut self,
        fabric: &mut MemFabric,
        from_cube: usize,
        start_addr: u64,
        bytes: u64,
        kind: AccessKind,
        now: Ps,
    ) -> Ps {
        debug_assert!(bytes > 0);
        let (home_node, from_node, slice_idx) = if self.attach_host {
            (Node::Host, Node::Host, 0)
        } else {
            let home = self.slice_cube(fabric, start_addr);
            let idx = if self.mode == SliceMode::Unified { 0 } else { home };
            (Node::Cube(home), Node::Cube(from_cube), idx)
        };
        let at = if from_node == home_node { now } else { fabric.control_packet(from_node, home_node, 16, now) };

        let block_bytes = self.slices[slice_idx].config().block_bytes as u64;
        let mut a = start_addr & !(block_bytes - 1);
        let end_addr = start_addr + bytes;
        let mut done = at;
        while a < end_addr {
            let mut d = self.ports[slice_idx].reserve(at, 1);
            let cache = &mut self.slices[slice_idx];
            let res = cache.access(a, kind);
            if !res.hit {
                d = fabric.access(home_node, a, block_bytes as u32, DramOp::Read, d);
            }
            if let Some(victim) = res.writeback {
                fabric.access(home_node, victim, block_bytes as u32, DramOp::Write, d);
            }
            done = done.max(d);
            a += block_bytes;
        }
        if from_node == home_node {
            done
        } else {
            fabric.control_packet(home_node, from_node, 32, done)
        }
    }

    /// Flushes every slice (end of a MajorGC phase, §4.5), writing dirty
    /// blocks back. Returns when the write-back traffic has drained.
    pub fn flush(&mut self, fabric: &mut MemFabric, now: Ps) -> Ps {
        let mut done = now;
        for (i, cache) in self.slices.iter_mut().enumerate() {
            let (_, dirty) = cache.flush_all();
            let node = if self.attach_host {
                Node::Host
            } else if self.mode == SliceMode::Unified {
                Node::Cube(0)
            } else {
                Node::Cube(i)
            };
            let block = cache.config().block_bytes as u32;
            let mut t = now;
            for _ in 0..dirty {
                // Sequential write-back stream; addresses are within the
                // bitmap region homed at this cube (approximated by the
                // cube-local base).
                t = fabric.access(node, (i as u64) << 21, block, DramOp::Write, t);
            }
            done = done.max(t);
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use charon_sim::config::SystemConfig;

    fn setup(mode: SliceMode) -> (MemFabric, BitmapCache) {
        let cfg = SystemConfig::table2_hmc();
        (MemFabric::new(&cfg), BitmapCache::new(mode, 4, cfg.charon.bitmap_cache, Freq::ghz(1.0)))
    }

    #[test]
    fn hit_after_miss_is_fast() {
        let (mut f, mut bc) = setup(SliceMode::Unified);
        let miss = bc.access(&mut f, 0, 0x1000, AccessKind::Read, Ps::ZERO);
        let hit = bc.access(&mut f, 0, 0x1008, AccessKind::Read, miss) - miss;
        assert!(miss > Ps::from_ns(10.0), "miss must reach DRAM: {miss}");
        assert_eq!(hit, Ps::from_ns(1.0), "same 32 B block hits in one cycle");
    }

    #[test]
    fn unified_remote_access_pays_links() {
        let (mut f, mut bc) = setup(SliceMode::Unified);
        // Warm the block from the center cube.
        let warm = bc.access(&mut f, 0, 0x2000, AccessKind::Read, Ps::ZERO);
        // A unit on cube 2 hits the same block but pays two link crossings.
        let remote = bc.access(&mut f, 2, 0x2000, AccessKind::Read, warm) - warm;
        assert!(remote > Ps::from_ns(6.0), "remote unified hit too fast: {remote}");
    }

    #[test]
    fn distributed_local_access_avoids_links() {
        let (mut f, mut bc) = setup(SliceMode::Distributed);
        // Address homed on cube 2 (first interleave page of cube 2).
        let addr = 2u64 << 20;
        let warm = bc.access(&mut f, 2, addr, AccessKind::Read, Ps::ZERO);
        let hit = bc.access(&mut f, 2, addr, AccessKind::Read, warm) - warm;
        assert_eq!(hit, Ps::from_ns(1.0));
    }

    #[test]
    fn stats_track_hits() {
        let (mut f, mut bc) = setup(SliceMode::Unified);
        let t = bc.access(&mut f, 0, 0x0, AccessKind::Read, Ps::ZERO);
        bc.access(&mut f, 0, 0x8, AccessKind::Read, t);
        bc.access(&mut f, 0, 0x10, AccessKind::Read, t);
        let s = bc.stats();
        assert_eq!(s.accesses(), 3);
        assert_eq!(s.misses, 1);
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn flush_writes_back_dirty_blocks() {
        let (mut f, mut bc) = setup(SliceMode::Unified);
        let t = bc.access(&mut f, 0, 0x40, AccessKind::Write, Ps::ZERO);
        let before = f.stats().dram.write_bytes;
        let done = bc.flush(&mut f, t);
        assert!(done > t);
        assert!(f.stats().dram.write_bytes > before, "dirty block must reach DRAM");
        // Cache now cold again.
        let re = bc.access(&mut f, 0, 0x40, AccessKind::Read, done);
        assert!(re - done > Ps::from_ns(10.0));
    }
}
