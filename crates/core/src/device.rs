//! [`CharonDevice`] — the assembled accelerator and its `offload()` path.
//!
//! The device models *timing only*: the collector in `charon-gc` performs
//! each primitive's functional work on the simulated heap first, then hands
//! the resulting access descriptors here. An offload proceeds exactly as
//! §4.1 describes:
//!
//! 1. the host builds a 48 B request packet, routed over the serial links
//!    to the scheduled cube (the host thread then blocks),
//! 2. the packet waits in the per-primitive command queue until a unit
//!    instance is free,
//! 3. the unit streams memory requests — one per logic-layer cycle, bounded
//!    by the cube's MAI request buffer, each translated by the accelerator
//!    TLB — into the local vaults or across cube links,
//! 4. `clflush` probes invalidate any host-cached copies of lines the unit
//!    touches (dirty hits are written back before the unit proceeds;
//!    Bitmap Count skips probing since the host never writes the bitmap),
//! 5. a 16/32 B response packet unblocks the host thread.
//!
//! [`Placement::CpuSide`] moves the same units next to the host memory
//! controller (Fig. 16): packets become on-chip (free), no clflush probes
//! or accelerator TLB are needed, but every memory request pays the
//! off-chip serial-link path instead of cube-internal TSV bandwidth.

use crate::bitmap_cache::{BitmapCache, SliceMode};
use crate::mai::Mai;
use crate::packet::{InitializeParams, PrimType, REQUEST_BYTES, RESPONSE_NACK_BYTES};
use crate::sched::Scheduler;
use crate::tlb::{AccelTlb, TlbMode};
use crate::units::{NoUnits, UnitPool};
use charon_heap::addr::VAddr;
use charon_sim::bwres::{BatchCompletion, BwOccupancy};
use charon_sim::cache::AccessKind;
use charon_sim::config::SystemConfig;
use charon_sim::dram::DramOp;
use charon_sim::faults::{FaultInjector, FaultRates, FaultSite, RecoveryConfig};
use charon_sim::host::HostTiming;
use charon_sim::noc::Node;
use charon_sim::telemetry::{Event, Telemetry};
use charon_sim::time::Ps;
use std::fmt;

/// Where the Charon units sit (Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// In the logic layer of each HMC cube (the paper's main design).
    MemorySide,
    /// Beside the host memory controller.
    CpuSide,
}

/// Placement of the shared accelerator structures (bitmap cache + TLB),
/// §4.6 and Fig. 15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructureMode {
    /// The paper's default build (Table 4): one bitmap cache at the
    /// central cube, a TLB slice on every cube.
    Table4,
    /// Single bitmap cache *and* TLB at the central cube (Fig. 15's
    /// "unified design").
    Unified,
    /// Per-cube slices of both (Fig. 15's "distributed design").
    Distributed,
}

/// One referent processed by a Scan&Push invocation, with the dependent
/// action the unit performs once the referent's header returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanRef {
    /// The referent object's address (its header is loaded). `NULL` refs
    /// are filtered out before this point.
    pub referent: VAddr,
    /// What happens after the header arrives.
    pub action: ScanAction,
}

/// The dependent action after a referent's header load (Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanAction {
    /// MinorGC: unmarked referent → push onto the object stack.
    Push {
        /// Simulated address of the stack slot written.
        stack_slot: VAddr,
    },
    /// MinorGC: already-forwarded referent → update the referring field.
    UpdateField {
        /// The field slot rewritten with the forwarding pointer.
        field_slot: VAddr,
    },
    /// MinorGC: forwarded referent staying young, holder in Old → update
    /// the field *and* dirty the holder's card.
    UpdateFieldAndCard {
        /// The field slot rewritten.
        field_slot: VAddr,
        /// The card byte dirtied.
        card_addr: VAddr,
    },
    /// MinorGC: promoted holder keeps a young ref → dirty its card.
    UpdateCard {
        /// The card byte's address.
        card_addr: VAddr,
    },
    /// MajorGC: unmarked referent → `mark_obj` (begin + end bitmap RMWs
    /// through the bitmap cache) then push.
    MarkAndPush {
        /// The 8 B begin-map word the RMW touches.
        beg_word: VAddr,
        /// The 8 B end-map word the RMW touches.
        end_word: VAddr,
        /// The stack slot written.
        stack_slot: VAddr,
    },
    /// Nothing further (already marked in MajorGC).
    None,
}

/// Per-primitive offload counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrimStats {
    /// Offloads served.
    pub offloads: u64,
    /// Total unit-busy time.
    pub busy: Ps,
    /// Payload bytes the primitive moved or scanned.
    pub bytes: u64,
    /// Total request-transport time (host → unit arrival).
    pub transport: Ps,
    /// Total command-queue wait (arrival → unit start).
    pub queue: Ps,
}

/// Per-unit-class utilization counters, mirrored out of the
/// [`UnitPool`]s so [`CharonStats`] readers (reports, the profiler) see
/// pool occupancy without reaching into the device internals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitClassStats {
    /// Total unit-busy time accumulated by the pool.
    pub busy: Ps,
    /// Executions the pool served.
    pub executions: u64,
    /// Injected stall/wedge events.
    pub wedges: u64,
    /// Queue-depth high-water mark ([`UnitPool::queue_high_water`]).
    pub queue_high_water: u64,
    /// Unit instances in the pool (all cubes).
    pub total_units: u64,
}

impl UnitClassStats {
    /// Pool utilization over `elapsed` wall time: busy unit-time divided
    /// by the pool's total unit-time capacity. Zero when nothing ran.
    pub fn utilization(&self, elapsed: Ps) -> f64 {
        let capacity = self.total_units * elapsed.0;
        if capacity == 0 {
            0.0
        } else {
            self.busy.0 as f64 / capacity as f64
        }
    }
}

/// JSON/report keys for the three unit classes, in the order of
/// [`CharonStats::units`] (Copy/Search pool, Bitmap Count pool, Scan&Push
/// pool).
pub const UNIT_CLASS_NAMES: [&str; 3] = ["copy_search", "bitmap_count", "scan_push"];

/// Component-level dynamic energy of the accelerator, picojoules.
///
/// §5.3: "energy consumption of general components (i.e., queues, metadata
/// arrays, TLB, and bitmap cache) is negligible compared to the total
/// energy consumption of Charon (maximum 3.18% for ALS)". The per-event
/// constants below are derived from the Table 4 component areas at 40 nm
/// (documented defaults; the paper publishes only the aggregate claim).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ComponentEnergy {
    /// Processing-unit datapath energy (the dominant share).
    pub units_pj: f64,
    /// Command/request queue energy (per offload + per memory request).
    pub queues_pj: f64,
    /// Accelerator TLB lookups.
    pub tlb_pj: f64,
    /// Bitmap-cache accesses.
    pub bitmap_cache_pj: f64,
}

impl ComponentEnergy {
    /// Total accelerator dynamic energy, picojoules.
    pub fn total_pj(&self) -> f64 {
        self.units_pj + self.queues_pj + self.tlb_pj + self.bitmap_cache_pj
    }

    /// Fraction contributed by the general components (everything but the
    /// processing units) — the paper's ≤ 3.18% claim.
    pub fn general_fraction(&self) -> f64 {
        let t = self.total_pj();
        if t == 0.0 {
            0.0
        } else {
            (self.queues_pj + self.tlb_pj + self.bitmap_cache_pj) / t
        }
    }
}

/// Device-wide statistics.
#[derive(Debug, Clone, Default)]
pub struct CharonStats {
    /// Indexed by [`PrimType`] discriminant.
    pub prims: [PrimStats; 4],
    /// Per-unit-class pool counters, in [`UNIT_CLASS_NAMES`] order.
    pub units: [UnitClassStats; 3],
    /// Offloads bounced by the route check — sent to a cube with no
    /// units of the class — indexed by [`PrimType`] discriminant.
    pub misroutes: [u64; 4],
    /// Component-level dynamic energy.
    pub energy: ComponentEnergy,
}

impl CharonStats {
    /// Stats for one primitive.
    pub fn prim(&self, p: PrimType) -> PrimStats {
        self.prims[p.encode() as usize]
    }

    /// Total offloads.
    pub fn total_offloads(&self) -> u64 {
        self.prims.iter().map(|p| p.offloads).sum()
    }

    /// Total unit-busy time across primitives.
    pub fn total_busy(&self) -> Ps {
        self.prims.iter().map(|p| p.busy).sum()
    }

    /// Machine-readable view: per-primitive counters keyed by name, plus
    /// the component-energy split.
    pub fn to_json(&self) -> charon_sim::json::Json {
        use charon_sim::json::Json;
        let prims = Json::obj(
            PrimType::ALL
                .iter()
                .map(|&p| {
                    let s = self.prim(p);
                    (
                        p.name().to_string(),
                        Json::obj(vec![
                            ("offloads", Json::U64(s.offloads)),
                            ("busy_ps", Json::U64(s.busy.0)),
                            ("bytes", Json::U64(s.bytes)),
                            ("transport_ps", Json::U64(s.transport.0)),
                            ("queue_ps", Json::U64(s.queue.0)),
                            ("misroutes", Json::U64(self.misroutes[p.encode() as usize])),
                        ]),
                    )
                })
                .collect::<Vec<_>>(),
        );
        let units = Json::obj(
            UNIT_CLASS_NAMES
                .iter()
                .zip(self.units.iter())
                .map(|(&name, u)| {
                    (
                        name.to_string(),
                        Json::obj(vec![
                            ("busy_ps", Json::U64(u.busy.0)),
                            ("executions", Json::U64(u.executions)),
                            ("wedges", Json::U64(u.wedges)),
                            ("queue_high_water", Json::U64(u.queue_high_water)),
                            ("total_units", Json::U64(u.total_units)),
                        ]),
                    )
                })
                .collect::<Vec<_>>(),
        );
        Json::obj(vec![
            ("prims", prims),
            ("units", units),
            (
                "energy_pj",
                Json::obj(vec![
                    ("units", Json::F64(self.energy.units_pj)),
                    ("queues", Json::F64(self.energy.queues_pj)),
                    ("tlb", Json::F64(self.energy.tlb_pj)),
                    ("bitmap_cache", Json::F64(self.energy.bitmap_cache_pj)),
                    ("total", Json::F64(self.energy.total_pj())),
                ]),
            ),
        ])
    }
}

impl fmt::Display for CharonStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in PrimType::ALL {
            let s = self.prim(p);
            writeln!(
                f,
                "{p}: {} offloads, busy {}, {:.2} MB, transport {}, queue {}",
                s.offloads,
                s.busy,
                s.bytes as f64 / 1e6,
                s.transport,
                s.queue
            )?;
        }
        Ok(())
    }
}

/// One offload described as data, for the fault-aware [`CharonDevice::offload`]
/// entry point: a retry loop needs to re-issue the same primitive, so the
/// call is reified instead of threaded through four separate methods.
#[derive(Debug, Clone, Copy)]
pub enum OffloadCall<'a> {
    /// [`CharonDevice::offload_copy`].
    Copy {
        /// Copy source.
        src: VAddr,
        /// Copy destination.
        dst: VAddr,
        /// Bytes moved.
        bytes: u64,
    },
    /// [`CharonDevice::offload_search`].
    Search {
        /// Scan start (card-table address).
        start: VAddr,
        /// Bytes scanned before the hit (or the full range).
        scanned_bytes: u64,
    },
    /// [`CharonDevice::offload_bitmap_count`].
    BitmapCount {
        /// `(start, bytes)` bitmap spans read.
        spans: &'a [(VAddr, u64)],
    },
    /// [`CharonDevice::offload_scan_push`].
    ScanPush {
        /// First reference-field address.
        fields_start: VAddr,
        /// Bytes of reference fields.
        field_bytes: u64,
        /// Referents and their dependent actions.
        refs: &'a [ScanRef],
    },
}

impl OffloadCall<'_> {
    /// Which primitive this call invokes.
    pub fn prim(&self) -> PrimType {
        match self {
            OffloadCall::Copy { .. } => PrimType::Copy,
            OffloadCall::Search { .. } => PrimType::Search,
            OffloadCall::BitmapCount { .. } => PrimType::BitmapCount,
            OffloadCall::ScanPush { .. } => PrimType::ScanPush,
        }
    }

    /// The first address operand — what the scheduler routes on.
    pub fn lead_addr(&self) -> VAddr {
        match *self {
            OffloadCall::Copy { src, .. } => src,
            OffloadCall::Search { start, .. } => start,
            OffloadCall::BitmapCount { spans } => spans.first().map(|&(a, _)| a).unwrap_or(VAddr::NULL),
            OffloadCall::ScanPush { fields_start, .. } => fields_start,
        }
    }
}

/// A successful (possibly retried) offload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffloadGrant {
    /// When the host thread unblocks.
    pub done: Ps,
    /// Attempts that failed before the one that succeeded.
    pub retries: u32,
}

/// An offload the recovery layer gave up on: the caller must complete the
/// primitive on the host software path, resuming at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffloadAbandoned {
    /// When the final failure was observed (all timeouts and backoffs
    /// charged) — the host fallback starts here.
    pub at: Ps,
    /// Re-issues charged beyond the first attempt (`retry_budget`, or 0
    /// when the unit was already dead).
    pub retries: u32,
    /// The site that killed the final attempt.
    pub site: FaultSite,
    /// `true` once the watchdog has declared this primitive's unit class
    /// dead: the caller should clear the primitive's `OffloadMask` bit so
    /// no further offloads are attempted.
    pub unit_dead: bool,
}

/// The device's fault-injection and recovery state. Absent by default —
/// the fault-free path never consults it, which is what keeps zero-rate
/// timing bit-identical to a build without the layer.
#[derive(Debug, Clone)]
struct FaultLayer {
    injector: FaultInjector,
    recovery: RecoveryConfig,
    /// Consecutive abandoned offloads per primitive (watchdog input).
    consecutive: [u32; 4],
    /// Primitives the watchdog has declared dead.
    dead: [bool; 4],
    /// Total re-issues beyond each offload's first attempt, per primitive.
    retries: [u64; 4],
    /// Offloads abandoned to the host path, per primitive.
    abandoned: [u64; 4],
    /// Probe-after-N-GCs re-enable of dead units (`None` = dead forever,
    /// the pre-rearm behavior and the default).
    rearm_after: Option<u32>,
    /// GC prologues seen since each unit died (rearm input).
    gcs_since_death: [u32; 4],
    /// Re-armed units on probation: one more watchdog strike re-kills
    /// them instead of a full `watchdog_threshold` run.
    probing: [bool; 4],
}

impl FaultLayer {
    /// A layer that injects nothing: used when only the watchdog state
    /// machine is needed (quarantine kills, re-arm probes). Zero rates
    /// never draw from any stream, so arming this is timing-identical to
    /// having no layer at all.
    fn idle() -> FaultLayer {
        FaultLayer {
            injector: FaultInjector::new(0, FaultRates::zero()),
            recovery: RecoveryConfig::default(),
            consecutive: [0; 4],
            dead: [false; 4],
            retries: [0; 4],
            abandoned: [0; 4],
            rearm_after: None,
            gcs_since_death: [0; 4],
            probing: [false; 4],
        }
    }
}

/// Snapshot of the recovery layer's counters, indexed by
/// [`PrimType::encode`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceFaultCounters {
    /// Re-issues beyond each offload's first attempt, per primitive.
    pub retries: [u64; 4],
    /// Offloads abandoned to the host path per primitive.
    pub abandoned: [u64; 4],
    /// Primitives declared dead by the watchdog.
    pub dead: [bool; 4],
}

/// The assembled accelerator.
#[derive(Debug, Clone)]
pub struct CharonDevice {
    cfg: SystemConfig,
    placement: Placement,
    structure: StructureMode,
    sched: Scheduler,
    copy_units: UnitPool,
    bc_units: UnitPool,
    sp_units: UnitPool,
    mai: Vec<Mai>,
    tlb: AccelTlb,
    bitmap_cache: BitmapCache,
    init: Option<InitializeParams>,
    stats: CharonStats,
    faults: Option<FaultLayer>,
    telemetry: Telemetry,
}

/// Granularity of the Copy/Search unit's streamed requests (the maximum
/// HMC packet payload, §4.2).
const STREAM_GRANULE: u64 = 256;
/// Minimum HMC access granularity (§4.5's over-fetch remark).
const MIN_ACCESS: u32 = 16;

// Per-event dynamic energies (pJ), scaled from the Table 4 areas at 40 nm.
// Datapath work dominates; SRAM-structure events are an order of magnitude
// cheaper — which is what makes §5.3's "general components are negligible"
// come out.
/// Unit datapath energy per byte processed.
const UNIT_PJ_PER_BYTE: f64 = 0.18;
/// Queue write+read energy per offload packet.
const QUEUE_PJ_PER_OFFLOAD: f64 = 3.0;
/// Request-queue energy per memory request.
const QUEUE_PJ_PER_REQUEST: f64 = 0.6;
/// TLB CAM lookup energy.
const TLB_PJ_PER_LOOKUP: f64 = 0.9;
/// Bitmap-cache SRAM access energy.
const BITMAP_PJ_PER_ACCESS: f64 = 1.1;

impl CharonDevice {
    /// Builds the device for the given system configuration, placement and
    /// structure mode. The default paper configuration is
    /// `(MemorySide, Unified)` — one bitmap cache at the center (Table 4)
    /// — with Scan&Push concentrated on the central cube.
    pub fn new(cfg: &SystemConfig, placement: Placement, structure: StructureMode) -> CharonDevice {
        let cubes = cfg.hmc.cubes;
        let ch = &cfg.charon;
        let (copy_units, bc_units, sp_units, mai_count) = match placement {
            Placement::MemorySide => (
                UnitPool::spread(ch.copy_search_units, cubes),
                UnitPool::spread(ch.bitmap_count_units, cubes),
                UnitPool::concentrated(ch.scan_push_units, cubes, Scheduler::CENTER),
                cubes,
            ),
            Placement::CpuSide => (
                UnitPool::concentrated(ch.copy_search_units, cubes, 0),
                UnitPool::concentrated(ch.bitmap_count_units, cubes, 0),
                UnitPool::concentrated(ch.scan_push_units, cubes, 0),
                1,
            ),
        };
        let (tlb_mode, slice_mode) = match structure {
            StructureMode::Table4 => (TlbMode::Distributed, SliceMode::Unified),
            StructureMode::Unified => (TlbMode::Unified, SliceMode::Unified),
            StructureMode::Distributed => (TlbMode::Distributed, SliceMode::Distributed),
        };
        let bitmap_cache = match placement {
            Placement::MemorySide => BitmapCache::new(slice_mode, cubes, ch.bitmap_cache, ch.unit_freq),
            Placement::CpuSide => BitmapCache::new_host_side(ch.bitmap_cache, ch.unit_freq),
        };
        let mut dev = CharonDevice {
            cfg: cfg.clone(),
            placement,
            structure,
            sched: Scheduler::new(cfg.hmc.clone()),
            copy_units,
            bc_units,
            sp_units,
            mai: (0..mai_count).map(|_| Mai::new(ch.mai_entries, ch.unit_freq)).collect(),
            tlb: AccelTlb::new(tlb_mode, cubes, ch.tlb_entries_per_cube, ch.unit_freq),
            bitmap_cache,
            init: None,
            stats: CharonStats::default(),
            faults: None,
            telemetry: Telemetry::disabled(),
        };
        dev.refresh_unit_stats();
        dev
    }

    /// Attaches a telemetry journal; the device records per-unit busy
    /// spans and fault observations into it. Timing is unaffected.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Arms the fault-injection and recovery layer. The default device
    /// has none: raw `offload_*` timing stays bit-identical whether or
    /// not this is ever called, and [`CharonDevice::offload`] with no
    /// layer (or all rates zero) dispatches straight through.
    pub fn enable_faults(&mut self, seed: u64, rates: FaultRates, recovery: RecoveryConfig) {
        let rearm_after = self.faults.as_ref().and_then(|f| f.rearm_after);
        self.faults =
            Some(FaultLayer { injector: FaultInjector::new(seed, rates), recovery, rearm_after, ..FaultLayer::idle() });
    }

    /// Arms (or disarms, with `None`) probe-after-N-GCs re-enable of
    /// watchdog-dead units. Creates an inject-nothing layer if none is
    /// armed yet, which leaves timing bit-identical.
    pub fn set_rearm(&mut self, after_gcs: Option<u32>) {
        self.ensure_fault_layer().rearm_after = after_gcs.filter(|&n| n > 0);
    }

    /// The armed probe interval, if any.
    pub fn rearm_after(&self) -> Option<u32> {
        self.faults.as_ref().and_then(|f| f.rearm_after)
    }

    /// Declares `prim`'s unit class dead, exactly as if its watchdog had
    /// fired — the integrity layer's rung-3 quarantine path. Creates an
    /// inject-nothing layer if none is armed yet.
    pub fn kill_unit(&mut self, prim: PrimType) {
        let layer = self.ensure_fault_layer();
        let pi = prim.encode() as usize;
        layer.consecutive[pi] = layer.consecutive[pi].max(layer.recovery.watchdog_threshold);
        layer.dead[pi] = true;
        layer.probing[pi] = false;
        layer.gcs_since_death[pi] = 0;
    }

    /// GC-prologue tick for the re-arm path: every dead unit ages one GC;
    /// those reaching the probe interval come back alive on probation
    /// (`consecutive` parked one strike below the watchdog threshold, so a
    /// still-broken unit re-dies after a single abandoned offload).
    /// Returns the re-armed unit classes.
    pub fn gc_tick(&mut self) -> Vec<PrimType> {
        let Some(layer) = &mut self.faults else { return Vec::new() };
        let Some(n) = layer.rearm_after else { return Vec::new() };
        let mut rearmed = Vec::new();
        for prim in PrimType::ALL {
            let pi = prim.encode() as usize;
            if layer.dead[pi] {
                layer.gcs_since_death[pi] += 1;
                if layer.gcs_since_death[pi] >= n {
                    layer.dead[pi] = false;
                    layer.probing[pi] = true;
                    layer.consecutive[pi] = layer.recovery.watchdog_threshold.saturating_sub(1);
                    layer.gcs_since_death[pi] = 0;
                    rearmed.push(prim);
                }
            }
        }
        rearmed
    }

    /// Units currently on re-arm probation, indexed by
    /// [`PrimType::encode`].
    pub fn probing_units(&self) -> [bool; 4] {
        match &self.faults {
            None => [false; 4],
            Some(f) => f.probing,
        }
    }

    fn ensure_fault_layer(&mut self) -> &mut FaultLayer {
        if self.faults.is_none() {
            self.faults = Some(FaultLayer::idle());
        }
        self.faults.as_mut().expect("layer just ensured")
    }

    /// Whether a fault layer is armed.
    pub fn faults_enabled(&self) -> bool {
        self.faults.is_some()
    }

    /// The armed injector, for campaign reporting.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.faults.as_ref().map(|f| &f.injector)
    }

    /// Whether the watchdog has declared `prim`'s unit class dead.
    pub fn unit_dead(&self, prim: PrimType) -> bool {
        self.faults.as_ref().is_some_and(|f| f.dead[prim.encode() as usize])
    }

    /// Watchdog verdict for all four unit classes at once, indexed by
    /// [`PrimType::encode`]. All-false when no fault layer is armed.
    pub fn dead_units(&self) -> [bool; 4] {
        match &self.faults {
            None => [false; 4],
            Some(f) => f.dead,
        }
    }

    /// Snapshot of the recovery counters (zeroes when no layer is armed).
    pub fn fault_counters(&self) -> DeviceFaultCounters {
        match &self.faults {
            None => DeviceFaultCounters::default(),
            Some(f) => DeviceFaultCounters { retries: f.retries, abandoned: f.abandoned, dead: f.dead },
        }
    }

    /// Injected-fault totals per site `(site, count)`, for reports.
    pub fn injected_by_site(&self) -> [(FaultSite, u64); 5] {
        let mut out = [(FaultSite::Link, 0); 5];
        for (i, site) in FaultSite::ALL.into_iter().enumerate() {
            out[i] = (site, self.faults.as_ref().map_or(0, |f| f.injector.injected(site)));
        }
        out
    }

    /// The `initialize()` intrinsic (§4.1): ships global addresses to every
    /// cube's memory-mapped registers. Called once at program launch.
    pub fn initialize(&mut self, params: InitializeParams) {
        self.init = Some(params);
    }

    /// Whether `initialize()` has run.
    pub fn is_initialized(&self) -> bool {
        self.init.is_some()
    }

    /// The placement under test.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// The structure mode under test.
    pub fn structure(&self) -> StructureMode {
        self.structure
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CharonStats {
        &self.stats
    }

    /// Bitmap-cache statistics (the paper reports ≈ 90 % hits).
    pub fn bitmap_cache_stats(&self) -> charon_sim::stats::CacheStats {
        self.bitmap_cache.stats()
    }

    /// TLB statistics `(lookups, remote_lookups)`.
    pub fn tlb_stats(&self) -> (u64, u64) {
        self.tlb.stats()
    }

    fn node_of(&self, cube: usize) -> Node {
        match self.placement {
            Placement::MemorySide => Node::Cube(cube),
            Placement::CpuSide => Node::Host,
        }
    }

    fn mai_idx(&self, cube: usize) -> usize {
        match self.placement {
            Placement::MemorySide => cube,
            Placement::CpuSide => 0,
        }
    }

    /// One unit memory request: MAI slot + issue cycle, translation,
    /// fabric access. `stream` is the issuing offload's in-flight window.
    #[allow(clippy::too_many_arguments)]
    fn unit_mem(
        &mut self,
        host: &mut HostTiming,
        stream: &mut charon_sim::issue::Window,
        cube: usize,
        addr: VAddr,
        bytes: u32,
        op: DramOp,
        now: Ps,
    ) -> Ps {
        let mi = self.mai_idx(cube);
        let t = self.mai[mi].issue(stream, now);
        let t = match self.placement {
            Placement::MemorySide => {
                let dest = host.fabric.cube_of(addr.0).unwrap_or(0);
                self.tlb.translate(&mut host.fabric, cube, dest, t)
            }
            // CPU-side units use the host MMU: one cycle, no hops.
            Placement::CpuSide => t + self.cfg.charon.unit_freq.period(),
        };
        let done = host.fabric.access(self.node_of(cube), addr.0, bytes, op, t);
        stream.complete(done);
        done
    }

    /// A batched streaming run: `bytes` of contiguous memory issued as one
    /// run of [`STREAM_GRANULE`]-sized unit requests. The run occupies one
    /// MAI window slot for its head, takes one cube issue cycle per chunk
    /// (metered as a batch), translates once at the head (the unit's
    /// sequential walk reuses the translation), and streams the fabric
    /// accesses through [`charon_sim::host::MemFabric::access_many`].
    ///
    /// Returns the completion of the head chunk (for dependent consumers
    /// that pipeline on the first datum) and of the whole run.
    #[allow(clippy::too_many_arguments)]
    fn unit_stream_run(
        &mut self,
        host: &mut HostTiming,
        stream: &mut charon_sim::issue::Window,
        cube: usize,
        addr: VAddr,
        bytes: u64,
        op: DramOp,
        now: Ps,
    ) -> BatchCompletion {
        debug_assert!(bytes > 0);
        let chunks = bytes.div_ceil(STREAM_GRANULE).max(1);
        let mi = self.mai_idx(cube);
        let issued = self.mai[mi].issue_many(stream, now, chunks);
        let t = match self.placement {
            Placement::MemorySide => {
                let dest = host.fabric.cube_of(addr.0).unwrap_or(0);
                self.tlb.translate(&mut host.fabric, cube, dest, issued.first)
            }
            Placement::CpuSide => issued.first + self.cfg.charon.unit_freq.period(),
        };
        let run = host.fabric.access_many(self.node_of(cube), addr.0, bytes, op, t);
        let last = run.last.max(issued.last);
        stream.complete(last);
        BatchCompletion { first: run.first, last }
    }

    /// Aggregate MAI issue-meter occupancy across all cubes.
    pub fn mai_occupancy(&self) -> BwOccupancy {
        self.mai.iter().map(Mai::occupancy).fold(BwOccupancy::default(), |a, b| a + b)
    }

    /// Invalidates the host-cached lines of `[start, start+bytes)` before a
    /// unit touches them (§4.1). Dirty hits are written back to memory
    /// before `now`; returns the time the region is safe to read.
    fn clflush_range(&mut self, host: &mut HostTiming, start: VAddr, bytes: u64, now: Ps) -> Ps {
        // Both placements sit below the cache hierarchy (§4.6 likens the
        // CPU-side variant to a unit "near the memory controller"), so both
        // must invalidate host-cached copies before touching memory.
        let line = 64u64;
        let mut t = now;
        let mut a = start.align_down(line);
        let end = start.add_bytes(bytes);
        while a < end {
            if host.clflush_line(a.0) {
                t = host.fabric.access(Node::Host, a.0, line as u32, DramOp::Write, t);
            }
            a = a.add_bytes(line);
        }
        t
    }

    fn send_request(&mut self, host: &mut HostTiming, cube: usize, now: Ps) -> Ps {
        match self.placement {
            Placement::MemorySide => host.fabric.control_packet(Node::Host, Node::Cube(cube), REQUEST_BYTES, now),
            Placement::CpuSide => now,
        }
    }

    fn send_response(&mut self, host: &mut HostTiming, cube: usize, prim: PrimType, done: Ps) -> Ps {
        match self.placement {
            Placement::MemorySide => {
                host.fabric
                    .control_packet(Node::Cube(cube), Node::Host, prim.response_bytes(), done)
            }
            Placement::CpuSide => done,
        }
    }

    fn record(&mut self, prim: PrimType, cube: usize, start: Ps, end: Ps, bytes: u64) {
        let s = &mut self.stats.prims[prim.encode() as usize];
        s.offloads += 1;
        s.busy += end - start;
        s.bytes += bytes;
        self.stats.energy.units_pj += bytes as f64 * UNIT_PJ_PER_BYTE;
        self.telemetry
            .record(|| Event::UnitSpan { prim: prim.name(), cube, start, end, bytes });
    }

    /// Folds the per-structure event counters (gathered since the last
    /// call) into the energy account.
    fn settle_component_energy(&mut self) {
        let requests: u64 = self.mai.iter().map(Mai::requests).sum();
        let (lookups, _) = self.tlb.stats();
        let bc = self.bitmap_cache.stats().accesses();
        let e = &mut self.stats.energy;
        // Absolute counters: recompute from totals (idempotent).
        e.tlb_pj = lookups as f64 * TLB_PJ_PER_LOOKUP;
        e.bitmap_cache_pj = bc as f64 * BITMAP_PJ_PER_ACCESS;
        let per_offload: f64 = self.stats.prims.iter().map(|p| p.offloads as f64).sum::<f64>() * QUEUE_PJ_PER_OFFLOAD;
        e.queues_pj = per_offload + requests as f64 * QUEUE_PJ_PER_REQUEST;
    }

    /// The component-level energy account (recomputed on read).
    pub fn component_energy(&mut self) -> ComponentEnergy {
        self.settle_component_energy();
        self.stats.energy
    }

    fn record_wait(&mut self, prim: PrimType, now: Ps, arrive: Ps, queue_delay: Ps) {
        let s = &mut self.stats.prims[prim.encode() as usize];
        s.transport += arrive - now;
        s.queue += queue_delay;
        self.refresh_unit_stats();
    }

    /// Mirrors the pool counters into `stats.units` (cheap field copies;
    /// idempotent). Called whenever a pool may have changed.
    fn refresh_unit_stats(&mut self) {
        for (slot, pool) in self
            .stats
            .units
            .iter_mut()
            .zip([&self.copy_units, &self.bc_units, &self.sp_units])
        {
            *slot = UnitClassStats {
                busy: pool.busy_time(),
                executions: pool.executions(),
                wedges: pool.wedges(),
                queue_high_water: pool.queue_high_water(),
                total_units: pool.total_units(),
            };
        }
    }

    // --- fault-aware entry point ---------------------------------------

    /// Dispatches `call` to the matching raw primitive.
    ///
    /// # Errors
    ///
    /// [`NoUnits`] when the call was routed to a cube with no units of
    /// the primitive's class (a scheduler/placement bug, or a deliberate
    /// [`CharonDevice::set_unit_layout`] experiment).
    fn dispatch(&mut self, host: &mut HostTiming, now: Ps, call: &OffloadCall<'_>) -> Result<Ps, NoUnits> {
        match *call {
            OffloadCall::Copy { src, dst, bytes } => self.offload_copy(host, now, src, dst, bytes),
            OffloadCall::Search { start, scanned_bytes } => self.offload_search(host, now, start, scanned_bytes),
            OffloadCall::BitmapCount { spans } => self.offload_bitmap_count(host, now, spans),
            OffloadCall::ScanPush { fields_start, field_bytes, refs } => {
                self.offload_scan_push(host, now, fields_start, field_bytes, refs)
            }
        }
    }

    /// The unit pool serving `prim`.
    fn pool_mut(&mut self, prim: PrimType) -> &mut UnitPool {
        match prim {
            PrimType::Copy | PrimType::Search => &mut self.copy_units,
            PrimType::BitmapCount => &mut self.bc_units,
            PrimType::ScanPush => &mut self.sp_units,
        }
    }

    /// The unit pool serving `prim` (read-only view).
    fn pool(&self, prim: PrimType) -> &UnitPool {
        match prim {
            PrimType::Copy | PrimType::Search => &self.copy_units,
            PrimType::BitmapCount => &self.bc_units,
            PrimType::ScanPush => &self.sp_units,
        }
    }

    /// Verifies the routed cube can serve `prim` *before* any request
    /// traffic is charged: a misroute must leave the device and fabric
    /// untouched so the caller can rerun the work on the host software
    /// path from the same instant.
    fn route_check(&mut self, prim: PrimType, cube: usize) -> Result<(), NoUnits> {
        let pool = self.pool(prim);
        if pool.units_on(cube) == 0 {
            let err = NoUnits { cube, cubes: pool.cube_count() };
            self.stats.misroutes[prim.encode() as usize] += 1;
            return Err(err);
        }
        Ok(())
    }

    /// Replaces `prim`'s unit layout with `per_cube[c]` instances on cube
    /// `c` — an experiment/test hook for exotic placements (e.g. moving
    /// every Scan&Push unit off the central cube to force misroutes).
    /// Resets the pool's accounting.
    ///
    /// # Panics
    ///
    /// Panics if every cube has zero instances (via [`UnitPool::new`]).
    pub fn set_unit_layout(&mut self, prim: PrimType, per_cube: &[usize]) {
        *self.pool_mut(prim) = UnitPool::new(per_cube);
        self.refresh_unit_stats();
    }

    /// Converts a [`NoUnits`] route failure into the abandonment the
    /// caller degrades on. No time passes and no watchdog state moves:
    /// the request never reached a unit, and reissuing it would misroute
    /// identically.
    fn abandon_misroute(&mut self, prim: PrimType, at: Ps, retries: u32) -> OffloadAbandoned {
        self.telemetry
            .record(|| Event::Fault { site: "route", prim: prim.name(), at, attempt: retries });
        OffloadAbandoned { at, retries, site: FaultSite::Unit, unit_dead: false }
    }

    /// Charges one failed attempt: the request transport that still
    /// happened, the site-specific failure bookkeeping, and the wait
    /// until the host *observes* the failure. Returns the observation
    /// time (strictly after `t` — silent failures cost the full timeout,
    /// an explicit queue NACK costs its round trip).
    #[allow(clippy::too_many_arguments)]
    fn observe_failure(
        &mut self,
        host: &mut HostTiming,
        prim: PrimType,
        addr: VAddr,
        t: Ps,
        site: FaultSite,
        attempt: u32,
        timeout: Ps,
    ) -> Ps {
        let cube = match self.placement {
            Placement::MemorySide => self.sched.cube_for_attempt(prim, addr, attempt),
            Placement::CpuSide => 0,
        };
        match site {
            FaultSite::Link => {
                // The packet left the host and died en route: first-hop
                // bandwidth is consumed, nothing arrives, and the host
                // only learns at its timeout.
                if self.placement == Placement::MemorySide {
                    host.fabric
                        .control_packet_dropped(Node::Host, Node::Cube(cube), REQUEST_BYTES, t);
                }
                t + timeout
            }
            FaultSite::Queue => {
                // The packet arrived but the command queue was full; the
                // cube NACKs explicitly, so the host learns at the NACK's
                // arrival rather than its timeout.
                let arrive = self.send_request(host, cube, t);
                let nack = match self.placement {
                    Placement::MemorySide => {
                        host.fabric
                            .control_packet(Node::Cube(cube), Node::Host, RESPONSE_NACK_BYTES, arrive)
                    }
                    Placement::CpuSide => arrive,
                };
                // On-chip NACKs (CpuSide) are instantaneous; keep time
                // strictly advancing with one unit cycle.
                nack.max(t + self.cfg.charon.unit_freq.period())
            }
            FaultSite::Tlb => {
                let arrive = self.send_request(host, cube, t);
                self.tlb.record_unserviceable();
                arrive.max(t + timeout)
            }
            FaultSite::Mai => {
                let arrive = self.send_request(host, cube, t);
                let mi = self.mai_idx(cube);
                self.mai[mi].record_parity_error();
                arrive.max(t + timeout)
            }
            FaultSite::Unit => {
                let arrive = self.send_request(host, cube, t);
                self.pool_mut(prim).record_wedge();
                self.refresh_unit_stats();
                arrive.max(t + timeout)
            }
        }
    }

    /// The recovery-layer offload entry point (§4.1's blocking protocol
    /// plus the RAS story the paper leaves to "the system"): rolls each
    /// attempt through the armed [`FaultInjector`], charges timeout +
    /// bounded exponential backoff for every failure, retries within the
    /// budget, and feeds the per-primitive watchdog.
    ///
    /// With no fault layer armed — or one armed with all rates zero —
    /// the first attempt succeeds unconditionally and timing is exactly
    /// that of the matching raw `offload_*` call.
    ///
    /// # Errors
    ///
    /// [`OffloadAbandoned`] when the retry budget is exhausted (or the
    /// unit class is already dead): the caller completes the primitive on
    /// the host software path starting at `OffloadAbandoned::at`, and
    /// clears the primitive's offload bit when `unit_dead` is set. A
    /// misrouted call — scheduled onto a cube with no units of the class
    /// ([`NoUnits`]) — is deterministic, so it abandons immediately at the
    /// issue time without burning retries and without feeding the
    /// watchdog; the unit class stays alive for correctly-routed work.
    pub fn offload(
        &mut self,
        host: &mut HostTiming,
        now: Ps,
        call: OffloadCall<'_>,
    ) -> Result<OffloadGrant, OffloadAbandoned> {
        let prim = call.prim();
        let pi = prim.encode() as usize;
        let Some(layer) = &self.faults else {
            return match self.dispatch(host, now, &call) {
                Ok(done) => Ok(OffloadGrant { done, retries: 0 }),
                Err(_) => Err(self.abandon_misroute(prim, now, 0)),
            };
        };
        let recovery = layer.recovery;
        if layer.dead[pi] {
            // Watchdog already fired; don't waste simulated time probing.
            return Err(OffloadAbandoned { at: now, retries: 0, site: FaultSite::Unit, unit_dead: true });
        }
        let addr = call.lead_addr();
        let mut t = now;
        let mut attempt = 0u32;
        loop {
            let rolled = self.faults.as_mut().expect("fault layer armed").injector.roll_attempt();
            let Some(site) = rolled else {
                let done = match self.dispatch(host, t, &call) {
                    Ok(done) => done,
                    Err(_) => return Err(self.abandon_misroute(prim, t, attempt)),
                };
                let layer = self.faults.as_mut().expect("fault layer armed");
                layer.consecutive[pi] = 0;
                layer.probing[pi] = false; // the probe survived: fully re-armed
                layer.retries[pi] += u64::from(attempt);
                return Ok(OffloadGrant { done, retries: attempt });
            };
            let observed = self.observe_failure(host, prim, addr, t, site, attempt, recovery.timeout);
            self.telemetry
                .record(|| Event::Fault { site: site.name(), prim: prim.name(), at: observed, attempt });
            if attempt >= recovery.retry_budget {
                let layer = self.faults.as_mut().expect("fault layer armed");
                layer.retries[pi] += u64::from(attempt);
                layer.abandoned[pi] += 1;
                layer.consecutive[pi] += 1;
                let unit_dead = layer.consecutive[pi] >= recovery.watchdog_threshold;
                if unit_dead {
                    layer.dead[pi] = true;
                    layer.probing[pi] = false;
                    layer.gcs_since_death[pi] = 0;
                }
                return Err(OffloadAbandoned { at: observed, retries: attempt, site, unit_dead });
            }
            t = observed + recovery.backoff(attempt);
            attempt += 1;
        }
    }

    // --- the four primitives -------------------------------------------

    /// Offloads a *Copy* of `bytes` from `src` to `dst` (§4.2). Returns the
    /// time the host thread unblocks.
    ///
    /// # Errors
    ///
    /// [`NoUnits`] when the scheduled cube has no Copy/Search units; the
    /// device and fabric are left untouched so the caller can degrade to
    /// the host software path from `now`.
    pub fn offload_copy(
        &mut self,
        host: &mut HostTiming,
        now: Ps,
        src: VAddr,
        dst: VAddr,
        bytes: u64,
    ) -> Result<Ps, NoUnits> {
        debug_assert!(bytes > 0);
        let cube = match self.placement {
            Placement::MemorySide => self.sched.cube_for(PrimType::Copy, src),
            Placement::CpuSide => 0,
        };
        self.route_check(PrimType::Copy, cube)?;
        let arrive = self.send_request(host, cube, now);
        let start = arrive;

        // Host copies of the source and destination must be invalidated.
        let flushed = self.clflush_range(host, src, bytes, start);
        let flushed = self.clflush_range(host, dst, bytes, flushed);

        // Reads stream out one per cycle as long as the MAI accepts
        // (§4.2); the store stream starts when the head load returns and
        // overlaps the remaining loads (chunk-pipelined, batched).
        let mut stream = self.mai[self.mai_idx(cube)].stream();
        let reads = self.unit_stream_run(host, &mut stream, cube, src, bytes, DramOp::Read, flushed);
        let writes = self.unit_stream_run(host, &mut stream, cube, dst, bytes, DramOp::Write, reads.first);
        let end = reads.last.max(writes.last);
        let served = self.copy_units.charge(cube, start, end - start);
        let queue_delay = served.saturating_sub(end);
        let end = end.max(served);
        self.record(PrimType::Copy, cube, start, end, 2 * bytes);
        self.record_wait(PrimType::Copy, now, arrive, queue_delay);
        Ok(self.send_response(host, cube, PrimType::Copy, end))
    }

    /// Offloads a *Search* over `scanned_bytes` of the card table starting
    /// at `start_addr` (§4.2); the functional result (found or not) was
    /// computed by the caller and determines how much was scanned.
    ///
    /// # Errors
    ///
    /// [`NoUnits`] when the scheduled cube has no Copy/Search units.
    pub fn offload_search(
        &mut self,
        host: &mut HostTiming,
        now: Ps,
        start_addr: VAddr,
        scanned_bytes: u64,
    ) -> Result<Ps, NoUnits> {
        let cube = match self.placement {
            Placement::MemorySide => self.sched.cube_for(PrimType::Search, start_addr),
            Placement::CpuSide => 0,
        };
        self.route_check(PrimType::Search, cube)?;
        let arrive = self.send_request(host, cube, now);
        let start = arrive;
        let flushed = self.clflush_range(host, start_addr, scanned_bytes, start);

        let mut stream = self.mai[self.mai_idx(cube)].stream();
        let read_bytes = scanned_bytes.max(u64::from(MIN_ACCESS));
        let run = self.unit_stream_run(host, &mut stream, cube, start_addr, read_bytes, DramOp::Read, flushed);
        let end = flushed.max(run.last);
        // Search shares the Copy unit (§4.2).
        let served = self.copy_units.charge(cube, start, end - start);
        let queue_delay = served.saturating_sub(end);
        let end = end.max(served);
        self.record(PrimType::Search, cube, start, end, scanned_bytes);
        self.record_wait(PrimType::Search, now, arrive, queue_delay);
        Ok(self.send_response(host, cube, PrimType::Search, end))
    }

    /// Offloads a *Bitmap Count* reading the given `(start, bytes)` spans
    /// of the begin and end maps through the bitmap cache (§4.3). The host
    /// never writes the bitmaps, so no clflush probing is needed.
    ///
    /// # Errors
    ///
    /// [`NoUnits`] when the scheduled cube has no Bitmap Count units.
    pub fn offload_bitmap_count(
        &mut self,
        host: &mut HostTiming,
        now: Ps,
        spans: &[(VAddr, u64)],
    ) -> Result<Ps, NoUnits> {
        let first = spans.first().map(|&(a, _)| a).unwrap_or(VAddr::NULL);
        // "This primitive is scheduled to the cube on which the bitmap
        // address falls" (§4.3). Under the unified design the cache sits on
        // the central cube, so off-center units exchange one range-granular
        // request/response with it per span; distributed slices are local.
        let cube = match self.placement {
            Placement::CpuSide => 0,
            Placement::MemorySide => self.sched.cube_for(PrimType::BitmapCount, first),
        };
        let _ = first;
        self.route_check(PrimType::BitmapCount, cube)?;
        let arrive = self.send_request(host, cube, now);
        let start = arrive;
        let mut stream = self.mai[self.mai_idx(cube)].stream();

        // The unit knows the exact read set up front and issues everything
        // immediately (§4.3). Short ranges — the repeated region-tail
        // queries of the adjust phase — go through the bitmap cache, whose
        // temporal locality the paper measures at ≈ 90 % hits. Long ranges
        // (whole-region summary scans) stream through the MAI at full
        // packet granularity, like Copy does; caching them would only
        // thrash the 8 KB cache.
        const CACHED_SPAN_LIMIT: u64 = 128;
        let mut end = start;
        let mut total = 0;
        for &(span_start, bytes) in spans {
            if bytes <= CACHED_SPAN_LIMIT {
                let done = self.bitmap_cache.access_range(
                    &mut host.fabric,
                    cube,
                    span_start.0,
                    bytes,
                    AccessKind::Read,
                    start,
                );
                end = end.max(done);
                total += bytes;
            } else {
                let run = self.unit_stream_run(host, &mut stream, cube, span_start, bytes, DramOp::Read, start);
                end = end.max(run.last);
                total += bytes;
            }
        }
        let served = self.bc_units.charge(cube, start, end - start);
        let queue_delay = served.saturating_sub(end);
        let end = end.max(served);
        self.record(PrimType::BitmapCount, cube, start, end, total);
        self.record_wait(PrimType::BitmapCount, now, arrive, queue_delay);
        Ok(self.send_response(host, cube, PrimType::BitmapCount, end))
    }

    /// Offloads a *Scan&Push* over an object whose reference fields occupy
    /// `field_bytes` starting at `fields_start`; `refs` describes each
    /// non-null referent and the dependent action (§4.4).
    ///
    /// Unlike Copy/Search/Bitmap Count, this primitive stays on the
    /// per-request path: its referent-header loads are irregular and its
    /// actions depend on each header's return time, so batching the runs
    /// would erase exactly the dependent-load behaviour §4.4 models.
    ///
    /// # Errors
    ///
    /// [`NoUnits`] when the scheduled cube has no Scan&Push units.
    pub fn offload_scan_push(
        &mut self,
        host: &mut HostTiming,
        now: Ps,
        fields_start: VAddr,
        field_bytes: u64,
        refs: &[ScanRef],
    ) -> Result<Ps, NoUnits> {
        let cube = match self.placement {
            Placement::MemorySide => Scheduler::CENTER,
            Placement::CpuSide => 0,
        };
        self.route_check(PrimType::ScanPush, cube)?;
        let arrive = self.send_request(host, cube, now);
        let start = arrive;
        let mut stream = self.mai[self.mai_idx(cube)].stream();
        let flushed = self.clflush_range(host, fields_start, field_bytes, start);

        // Stream the field loads; remember when each granule's pointers
        // become available.
        let granules = field_bytes.div_ceil(STREAM_GRANULE).max(1);
        let mut granule_done = Vec::with_capacity(granules as usize);
        for i in 0..granules {
            let off = i * STREAM_GRANULE;
            let len = STREAM_GRANULE.min(field_bytes.saturating_sub(off)).max(MIN_ACCESS as u64) as u32;
            let d = self.unit_mem(host, &mut stream, cube, fields_start.add_bytes(off), len, DramOp::Read, flushed);
            granule_done.push(d);
        }

        // Phase 1: the batch of referent-header loads (a 16 B
        // minimum-granularity load each), issued as fast as the MAI
        // accepts — this is the MLP the unit exploits (§4.4).
        let refs_per_granule = (STREAM_GRANULE / 8) as usize;
        let mut header_done = Vec::with_capacity(refs.len());
        for (i, r) in refs.iter().enumerate() {
            let avail = granule_done[(i / refs_per_granule).min(granule_done.len() - 1)];
            header_done.push(self.unit_mem(host, &mut stream, cube, r.referent, MIN_ACCESS, DramOp::Read, avail));
        }
        // Phase 2: each referent's dependent action fires when its header
        // returns.
        let mut end = *granule_done.iter().max().expect("at least one granule");
        for (i, r) in refs.iter().enumerate() {
            let h_done = header_done[i];
            let a_done = match r.action {
                ScanAction::Push { stack_slot } => {
                    self.unit_mem(host, &mut stream, cube, stack_slot, MIN_ACCESS, DramOp::Write, h_done)
                }
                ScanAction::UpdateField { field_slot } => {
                    self.unit_mem(host, &mut stream, cube, field_slot, MIN_ACCESS, DramOp::Write, h_done)
                }
                ScanAction::UpdateFieldAndCard { field_slot, card_addr } => {
                    let w = self.unit_mem(host, &mut stream, cube, field_slot, MIN_ACCESS, DramOp::Write, h_done);
                    self.unit_mem(host, &mut stream, cube, card_addr, MIN_ACCESS, DramOp::Write, w)
                }
                ScanAction::UpdateCard { card_addr } => {
                    self.unit_mem(host, &mut stream, cube, card_addr, MIN_ACCESS, DramOp::Write, h_done)
                }
                ScanAction::MarkAndPush { beg_word, end_word, stack_slot } => {
                    // mark_obj: atomic RMWs on the begin and end map words,
                    // served by the bitmap cache (§4.5).
                    let m1 = self
                        .bitmap_cache
                        .access(&mut host.fabric, cube, beg_word.0, AccessKind::Write, h_done);
                    let m2 = self
                        .bitmap_cache
                        .access(&mut host.fabric, cube, end_word.0, AccessKind::Write, m1);
                    self.unit_mem(host, &mut stream, cube, stack_slot, MIN_ACCESS, DramOp::Write, m2)
                }
                ScanAction::None => h_done,
            };
            end = end.max(a_done);
        }
        let served = self.sp_units.charge(cube, start, end - start);
        let queue_delay = served.saturating_sub(end);
        let end = end.max(served);
        self.record(PrimType::ScanPush, cube, start, end, field_bytes + refs.len() as u64 * 16);
        self.record_wait(PrimType::ScanPush, now, arrive, queue_delay);
        Ok(self.send_response(host, cube, PrimType::ScanPush, end))
    }

    /// Flushes the bitmap cache (after each MajorGC phase, §4.5).
    pub fn flush_bitmap_cache(&mut self, host: &mut HostTiming, now: Ps) -> Ps {
        self.bitmap_cache.flush(&mut host.fabric, now)
    }

    /// Total unit-busy time (all pools), for occupancy reporting.
    pub fn total_unit_busy(&self) -> Ps {
        self.copy_units.busy_time() + self.bc_units.busy_time() + self.sp_units.busy_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(placement: Placement) -> (HostTiming, CharonDevice) {
        let cfg = SystemConfig::table2_hmc();
        let host = HostTiming::new(&cfg);
        let dev = CharonDevice::new(&cfg, placement, StructureMode::Unified);
        (host, dev)
    }

    #[test]
    fn copy_moves_bytes_and_returns_later() {
        let (mut host, mut dev) = setup(Placement::MemorySide);
        let t = dev
            .offload_copy(&mut host, Ps::ZERO, VAddr(0x10000), VAddr(0x50000), 4096)
            .expect("routed cube has units");
        assert!(t > Ps::from_ns(10.0));
        let s = dev.stats().prim(PrimType::Copy);
        assert_eq!(s.offloads, 1);
        assert_eq!(s.bytes, 8192); // read + write
                                   // DRAM saw the traffic.
        assert!(host.fabric.stats().dram.total_bytes() >= 8192);
    }

    #[test]
    fn unit_class_stats_mirror_the_pools() {
        let (mut host, mut dev) = setup(Placement::MemorySide);
        let s = dev.stats();
        assert_eq!(s.units[0].total_units, 8, "Table 2: 8 Copy/Search units");
        assert_eq!(s.units[2].total_units, 8, "Table 2: 8 Scan&Push units");
        assert_eq!(s.units[0].executions, 0);
        dev.offload_copy(&mut host, Ps::ZERO, VAddr(0x10000), VAddr(0x50000), 4096)
            .expect("routed cube has units");
        let s = dev.stats();
        assert!(s.units[0].executions > 0, "copy offload runs on the Copy/Search pool");
        assert!(s.units[0].busy > Ps::ZERO);
        assert_eq!(s.units[0].busy, dev.copy_units.busy_time());
        let j = s.to_json();
        let u = j.get("units").unwrap().get("copy_search").unwrap();
        assert_eq!(u.get("total_units").and_then(|v| v.as_u64()), Some(8));
    }

    #[test]
    fn copy_throughput_exceeds_offchip_bandwidth() {
        // A large local copy must run faster than the 80 GB/s host link
        // could ever stream it — the internal-bandwidth advantage.
        let (mut host, mut dev) = setup(Placement::MemorySide);
        let bytes = 512 * 1024u64;
        let t = dev
            .offload_copy(&mut host, Ps::ZERO, VAddr(0), VAddr(0x4_0000), bytes)
            .expect("routed cube has units");
        let gbps = (2 * bytes) as f64 / t.as_secs() / 1e9;
        assert!(gbps > 80.0, "near-memory copy only reached {gbps:.1} GB/s");
    }

    #[test]
    fn cpu_side_copy_is_slower_than_memory_side() {
        let bytes = 256 * 1024u64;
        let (mut h1, mut d1) = setup(Placement::MemorySide);
        let t_mem = d1
            .offload_copy(&mut h1, Ps::ZERO, VAddr(0), VAddr(0x4_0000), bytes)
            .expect("routed cube has units");
        let (mut h2, mut d2) = setup(Placement::CpuSide);
        let t_cpu = d2
            .offload_copy(&mut h2, Ps::ZERO, VAddr(0), VAddr(0x4_0000), bytes)
            .expect("routed cube has units");
        assert!(t_cpu.0 as f64 > 1.2 * t_mem.0 as f64, "CPU-side ({t_cpu}) should trail memory-side ({t_mem})");
    }

    #[test]
    fn search_scans_and_responds_with_value_packet() {
        let (mut host, mut dev) = setup(Placement::MemorySide);
        let t = dev
            .offload_search(&mut host, Ps::ZERO, VAddr(0x8000), 2048)
            .expect("routed cube has units");
        assert!(t > Ps::ZERO);
        assert_eq!(dev.stats().prim(PrimType::Search).offloads, 1);
    }

    #[test]
    fn bitmap_count_reuses_cache_across_calls() {
        let (mut host, mut dev) = setup(Placement::MemorySide);
        // Small spans — the repeated region-tail queries — go through the
        // bitmap cache and hit on reuse.
        let spans = [(VAddr(0x1000), 64u64), (VAddr(0x9000), 64u64)];
        let t1 = dev
            .offload_bitmap_count(&mut host, Ps::ZERO, &spans)
            .expect("routed cube has units");
        let t2 = dev.offload_bitmap_count(&mut host, t1, &spans).expect("routed cube has units") - t1;
        assert!(t2 < t1, "warm call ({t2}) should beat cold call ({t1})");
        assert!(dev.bitmap_cache_stats().hit_rate() > 0.4);
        // Large spans — whole-region summary scans — stream via the MAI
        // and leave the cache untouched.
        let before = dev.bitmap_cache_stats().accesses();
        dev.offload_bitmap_count(&mut host, t1, &[(VAddr(0x2000), 4096u64)])
            .expect("routed cube has units");
        assert_eq!(dev.bitmap_cache_stats().accesses(), before);
    }

    #[test]
    fn scan_push_handles_all_action_kinds() {
        let (mut host, mut dev) = setup(Placement::MemorySide);
        let refs = [
            ScanRef { referent: VAddr(0x2000), action: ScanAction::Push { stack_slot: VAddr(0x9_0000) } },
            ScanRef { referent: VAddr(0x3000), action: ScanAction::UpdateField { field_slot: VAddr(0x1008) } },
            ScanRef { referent: VAddr(0x4000), action: ScanAction::UpdateCard { card_addr: VAddr(0x8_0000) } },
            ScanRef {
                referent: VAddr(0x5000),
                action: ScanAction::MarkAndPush {
                    beg_word: VAddr(0x7_0000),
                    end_word: VAddr(0x7_8000),
                    stack_slot: VAddr(0x9_0008),
                },
            },
            ScanRef {
                referent: VAddr(0x5800),
                action: ScanAction::UpdateFieldAndCard { field_slot: VAddr(0x1010), card_addr: VAddr(0x8_0001) },
            },
            ScanRef { referent: VAddr(0x6000), action: ScanAction::None },
        ];
        let t = dev
            .offload_scan_push(&mut host, Ps::ZERO, VAddr(0x1000), 5 * 8, &refs)
            .expect("routed cube has units");
        assert!(t > Ps::ZERO);
        assert_eq!(dev.stats().prim(PrimType::ScanPush).offloads, 1);
    }

    #[test]
    fn units_queue_when_busy() {
        let (mut host, mut dev) = setup(Placement::MemorySide);
        // Issue more copies on the same cube than it has units; later ones
        // queue behind earlier ones.
        let mut ends = Vec::new();
        for i in 0..4u64 {
            ends.push(
                dev.offload_copy(&mut host, Ps::ZERO, VAddr(i * 4096), VAddr(0x8_0000 + i * 4096), 4096)
                    .expect("routed cube has units"),
            );
        }
        assert!(ends[3] > ends[0], "queueing must delay the last offload");
    }

    #[test]
    fn initialize_records_params() {
        let (_, mut dev) = setup(Placement::MemorySide);
        assert!(!dev.is_initialized());
        dev.initialize(InitializeParams {
            heap_base: VAddr(0x1000_0000),
            beg_map_base: VAddr(0x2000_0000),
            bitmap_offset: 0x10_0000,
            card_table_base: VAddr(0x3000_0000),
        });
        assert!(dev.is_initialized());
    }

    #[test]
    fn offload_without_fault_layer_matches_raw_call() {
        let (mut h1, mut d1) = setup(Placement::MemorySide);
        let (mut h2, mut d2) = setup(Placement::MemorySide);
        let raw = d1
            .offload_copy(&mut h1, Ps::ZERO, VAddr(0x10000), VAddr(0x50000), 4096)
            .expect("routed cube has units");
        let call = OffloadCall::Copy { src: VAddr(0x10000), dst: VAddr(0x50000), bytes: 4096 };
        let grant = d2.offload(&mut h2, Ps::ZERO, call).expect("no layer, cannot fail");
        assert_eq!(grant.done, raw);
        assert_eq!(grant.retries, 0);
        assert_eq!(h1.fabric.stats(), h2.fabric.stats());
    }

    #[test]
    fn offload_with_zero_rates_matches_raw_call() {
        let (mut h1, mut d1) = setup(Placement::MemorySide);
        let (mut h2, mut d2) = setup(Placement::MemorySide);
        d2.enable_faults(42, FaultRates::zero(), RecoveryConfig::default());
        let raw = d1
            .offload_search(&mut h1, Ps::ZERO, VAddr(0x8000), 2048)
            .expect("routed cube has units");
        let grant = d2
            .offload(&mut h2, Ps::ZERO, OffloadCall::Search { start: VAddr(0x8000), scanned_bytes: 2048 })
            .expect("zero rates never fail");
        assert_eq!(grant.done, raw);
        assert_eq!(h1.fabric.stats(), h2.fabric.stats());
        assert_eq!(d2.fault_counters(), DeviceFaultCounters::default());
    }

    #[test]
    fn retries_cost_time_but_succeed_within_budget() {
        let (mut host, mut dev) = setup(Placement::MemorySide);
        // p=0.1 per site compounds to ~41% per attempt; 17 consecutive
        // failures is negligible and, more importantly, deterministic for
        // this seed.
        dev.enable_faults(
            1,
            FaultRates::uniform(0.1),
            RecoveryConfig { retry_budget: 16, ..RecoveryConfig::default() },
        );
        let mut t = Ps::ZERO;
        let mut total_retries = 0;
        for i in 0..20u64 {
            let call = OffloadCall::Copy { src: VAddr(i * 4096), dst: VAddr(0x80_0000 + i * 4096), bytes: 1024 };
            let g = dev
                .offload(&mut host, t, call)
                .expect("budget 16 at ~41%/attempt cannot exhaust here");
            assert!(g.done > t, "time must advance");
            total_retries += g.retries;
            t = g.done;
        }
        assert!(total_retries > 0, "~41%/attempt over 20 offloads must retry at least once");
        assert_eq!(u64::from(total_retries), dev.fault_counters().retries.iter().sum::<u64>());
        assert!(dev.fault_injector().unwrap().total_injected() > 0);
    }

    #[test]
    fn budget_exhaustion_feeds_watchdog_until_unit_dies() {
        let (mut host, mut dev) = setup(Placement::MemorySide);
        // Unit permanently wedged: every attempt fails, every offload
        // abandons, and the third abandonment kills the unit class.
        dev.enable_faults(
            7,
            FaultRates::only(FaultSite::Unit, 1.0),
            RecoveryConfig { retry_budget: 2, watchdog_threshold: 3, ..RecoveryConfig::default() },
        );
        let mut t = Ps::ZERO;
        let mut dead_seen = false;
        for _ in 0..3 {
            let e = dev
                .offload(&mut host, t, OffloadCall::Copy { src: VAddr(0), dst: VAddr(0x8000), bytes: 256 })
                .expect_err("p=1.0 must exhaust the budget");
            assert_eq!(e.site, FaultSite::Unit);
            assert_eq!(e.retries, 2);
            assert!(e.at > t, "timeouts and backoff must advance time");
            t = e.at;
            dead_seen = e.unit_dead;
        }
        assert!(dead_seen, "third consecutive abandonment must trip the watchdog");
        assert!(dev.unit_dead(PrimType::Copy));
        assert!(!dev.unit_dead(PrimType::ScanPush), "watchdog is per primitive");
        // Once dead, offloads bounce immediately without burning time.
        let e = dev
            .offload(&mut host, t, OffloadCall::Copy { src: VAddr(0), dst: VAddr(0x8000), bytes: 256 })
            .expect_err("dead unit cannot serve");
        assert_eq!((e.at, e.retries, e.unit_dead), (t, 0, true));
        let c = dev.fault_counters();
        assert_eq!(c.abandoned[PrimType::Copy.encode() as usize], 3);
        assert!(c.dead[PrimType::Copy.encode() as usize]);
    }

    #[test]
    fn rearm_probe_revives_dead_unit_after_n_gcs() {
        let (mut host, mut dev) = setup(Placement::MemorySide);
        dev.kill_unit(PrimType::Copy);
        assert!(dev.unit_dead(PrimType::Copy));
        dev.set_rearm(Some(2));
        assert_eq!(dev.rearm_after(), Some(2));
        assert!(dev.gc_tick().is_empty(), "one GC is below the probe interval");
        assert!(dev.unit_dead(PrimType::Copy));
        assert_eq!(dev.gc_tick(), vec![PrimType::Copy], "second GC reaches the interval");
        assert!(!dev.unit_dead(PrimType::Copy));
        assert!(dev.probing_units()[PrimType::Copy.encode() as usize]);
        // A surviving probe offload takes the unit off probation.
        dev.offload(&mut host, Ps::ZERO, OffloadCall::Copy { src: VAddr(0), dst: VAddr(0x8000), bytes: 256 })
            .expect("no faults armed, the probe must survive");
        assert!(!dev.probing_units()[PrimType::Copy.encode() as usize]);
        assert!(dev.gc_tick().is_empty(), "nothing left to re-arm");
    }

    #[test]
    fn rearmed_probe_redies_on_a_single_strike() {
        let (mut host, mut dev) = setup(Placement::MemorySide);
        // Unit permanently wedged: the probe after re-arm must fail too.
        dev.enable_faults(
            7,
            FaultRates::only(FaultSite::Unit, 1.0),
            RecoveryConfig { retry_budget: 0, watchdog_threshold: 3, ..RecoveryConfig::default() },
        );
        dev.kill_unit(PrimType::Copy);
        dev.set_rearm(Some(1));
        assert_eq!(dev.gc_tick(), vec![PrimType::Copy]);
        // One more abandonment — not watchdog_threshold of them — re-kills.
        let e = dev
            .offload(&mut host, Ps::ZERO, OffloadCall::Copy { src: VAddr(0), dst: VAddr(0x8000), bytes: 256 })
            .expect_err("wedged unit fails its probe");
        assert!(e.unit_dead, "a probing unit dies on its first strike");
        assert!(dev.unit_dead(PrimType::Copy));
        assert!(!dev.probing_units()[PrimType::Copy.encode() as usize]);
        // The probe cycle restarts: it comes back again next GC.
        assert_eq!(dev.gc_tick(), vec![PrimType::Copy]);
    }

    #[test]
    fn rearm_zero_disarms_and_unarmed_ticks_are_noops() {
        let (_, mut dev) = setup(Placement::MemorySide);
        assert!(dev.gc_tick().is_empty(), "no fault layer: tick is a no-op");
        dev.kill_unit(PrimType::Search);
        assert!(dev.gc_tick().is_empty(), "dead unit without --rearm stays dead");
        dev.set_rearm(Some(0));
        assert_eq!(dev.rearm_after(), None, "interval 0 means disarmed");
        dev.set_rearm(Some(1));
        dev.set_rearm(None);
        assert_eq!(dev.rearm_after(), None);
        assert!(dev.gc_tick().is_empty());
        assert!(dev.unit_dead(PrimType::Search));
    }

    #[test]
    fn each_fault_site_charges_its_own_bookkeeping() {
        for site in FaultSite::ALL {
            let (mut host, mut dev) = setup(Placement::MemorySide);
            dev.enable_faults(
                13,
                FaultRates::only(site, 1.0),
                RecoveryConfig { retry_budget: 1, ..RecoveryConfig::default() },
            );
            let e = dev
                .offload(&mut host, Ps::ZERO, OffloadCall::Search { start: VAddr(0x9000), scanned_bytes: 512 })
                .expect_err("p=1.0 must fail");
            assert_eq!(e.site, site);
            assert!(e.at > Ps::ZERO);
            let injected = dev.injected_by_site();
            assert_eq!(injected.iter().find(|&&(s, _)| s == site).unwrap().1, 2, "one per attempt");
            match site {
                FaultSite::Link => assert!(host.fabric.stats().link_drops > 0),
                FaultSite::Tlb => assert!(dev.tlb.unserviceable_misses() > 0),
                FaultSite::Mai => assert!(dev.mai.iter().map(Mai::parity_errors).sum::<u64>() > 0),
                FaultSite::Unit => assert!(dev.copy_units.wedges() > 0),
                FaultSite::Queue => {}
            }
        }
    }

    #[test]
    fn queue_nack_is_observed_before_the_timeout() {
        let recovery = RecoveryConfig { retry_budget: 0, ..RecoveryConfig::default() };
        let (mut h1, mut d1) = setup(Placement::MemorySide);
        d1.enable_faults(5, FaultRates::only(FaultSite::Queue, 1.0), recovery);
        let nack = d1
            .offload(&mut h1, Ps::ZERO, OffloadCall::Copy { src: VAddr(0), dst: VAddr(0x8000), bytes: 256 })
            .expect_err("queue full");
        let (mut h2, mut d2) = setup(Placement::MemorySide);
        d2.enable_faults(5, FaultRates::only(FaultSite::Unit, 1.0), recovery);
        let wedge = d2
            .offload(&mut h2, Ps::ZERO, OffloadCall::Copy { src: VAddr(0), dst: VAddr(0x8000), bytes: 256 })
            .expect_err("unit wedged");
        assert!(nack.at < wedge.at, "an explicit NACK ({}) must beat a silent timeout ({})", nack.at, wedge.at);
        assert!(wedge.at >= recovery.timeout);
    }

    /// A Scan&Push layout with every unit one cube off the central cube
    /// the scheduler routes that primitive to.
    fn off_center_scan_push(dev: &mut CharonDevice) -> usize {
        let cubes = dev.sp_units.cube_count();
        let mut per = vec![0usize; cubes];
        per[(Scheduler::CENTER + 1) % cubes] = 8;
        dev.set_unit_layout(PrimType::ScanPush, &per);
        cubes
    }

    #[test]
    fn misrouted_raw_offload_reports_typed_error() {
        let (mut host, mut dev) = setup(Placement::MemorySide);
        let cubes = off_center_scan_push(&mut dev);
        let e = dev
            .offload_scan_push(&mut host, Ps::ZERO, VAddr(0x1000), 8, &[])
            .expect_err("no Scan&Push units on the central cube");
        assert_eq!(e, NoUnits { cube: Scheduler::CENTER, cubes });
        let s = dev.stats();
        assert_eq!(s.prim(PrimType::ScanPush).offloads, 0, "a bounced route charges no traffic");
        assert_eq!(s.misroutes[PrimType::ScanPush.encode() as usize], 1);
        assert_eq!(host.fabric.stats().dram.total_bytes(), 0, "nothing reached the fabric");
    }

    #[test]
    fn misrouted_offload_abandons_instead_of_panicking() {
        let (mut host, mut dev) = setup(Placement::MemorySide);
        off_center_scan_push(&mut dev);
        let call = OffloadCall::ScanPush { fields_start: VAddr(0x1000), field_bytes: 8, refs: &[] };
        // Without a fault layer armed: immediate abandonment at issue time.
        let e = dev
            .offload(&mut host, Ps::from_us(3.0), call)
            .expect_err("misroute must abandon");
        assert_eq!(e, OffloadAbandoned { at: Ps::from_us(3.0), retries: 0, site: FaultSite::Unit, unit_dead: false });
        // With one armed: still immediate, and the watchdog stays quiet —
        // a deterministic misroute is not a transient unit fault.
        dev.enable_faults(9, FaultRates::zero(), RecoveryConfig::default());
        let e = dev
            .offload(&mut host, Ps::from_us(5.0), call)
            .expect_err("misroute must abandon");
        assert_eq!((e.at, e.retries, e.unit_dead), (Ps::from_us(5.0), 0, false));
        assert!(!dev.unit_dead(PrimType::ScanPush));
        assert_eq!(dev.fault_counters().abandoned, [0; 4]);
        assert_eq!(dev.stats().misroutes[PrimType::ScanPush.encode() as usize], 2);
        // Correctly-routed primitives are unaffected.
        dev.offload_copy(&mut host, Ps::ZERO, VAddr(0), VAddr(0x8000), 256)
            .expect("copy routes fine");
    }

    #[test]
    fn clflush_writes_back_dirty_host_lines() {
        let (mut host, mut dev) = setup(Placement::MemorySide);
        // Host dirties a line inside the copy source.
        host.mem_access(0, Ps::ZERO, 0x10040, 8, charon_sim::cache::AccessKind::Write);
        let before = host.fabric.stats().dram.write_bytes;
        dev.offload_copy(&mut host, Ps::from_us(1.0), VAddr(0x10000), VAddr(0x5_0000), 256)
            .expect("routed cube has units");
        let after = host.fabric.stats().dram.write_bytes;
        assert!(after > before, "dirty host line must be written back before the unit reads");
    }
}
