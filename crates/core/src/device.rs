//! [`CharonDevice`] — the assembled accelerator and its `offload()` path.
//!
//! The device models *timing only*: the collector in `charon-gc` performs
//! each primitive's functional work on the simulated heap first, then hands
//! the resulting access descriptors here. An offload proceeds exactly as
//! §4.1 describes:
//!
//! 1. the host builds a 48 B request packet, routed over the serial links
//!    to the scheduled cube (the host thread then blocks),
//! 2. the packet waits in the per-primitive command queue until a unit
//!    instance is free,
//! 3. the unit streams memory requests — one per logic-layer cycle, bounded
//!    by the cube's MAI request buffer, each translated by the accelerator
//!    TLB — into the local vaults or across cube links,
//! 4. `clflush` probes invalidate any host-cached copies of lines the unit
//!    touches (dirty hits are written back before the unit proceeds;
//!    Bitmap Count skips probing since the host never writes the bitmap),
//! 5. a 16/32 B response packet unblocks the host thread.
//!
//! [`Placement::CpuSide`] moves the same units next to the host memory
//! controller (Fig. 16): packets become on-chip (free), no clflush probes
//! or accelerator TLB are needed, but every memory request pays the
//! off-chip serial-link path instead of cube-internal TSV bandwidth.

use crate::bitmap_cache::{BitmapCache, SliceMode};
use crate::mai::Mai;
use crate::packet::{InitializeParams, PrimType, REQUEST_BYTES};
use crate::sched::Scheduler;
use crate::tlb::{AccelTlb, TlbMode};
use crate::units::UnitPool;
use charon_heap::addr::VAddr;
use charon_sim::bwres::{BatchCompletion, BwOccupancy};
use charon_sim::cache::AccessKind;
use charon_sim::config::SystemConfig;
use charon_sim::dram::DramOp;
use charon_sim::host::HostTiming;
use charon_sim::noc::Node;
use charon_sim::time::Ps;
use std::fmt;

/// Where the Charon units sit (Fig. 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Placement {
    /// In the logic layer of each HMC cube (the paper's main design).
    MemorySide,
    /// Beside the host memory controller.
    CpuSide,
}

/// Placement of the shared accelerator structures (bitmap cache + TLB),
/// §4.6 and Fig. 15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StructureMode {
    /// The paper's default build (Table 4): one bitmap cache at the
    /// central cube, a TLB slice on every cube.
    Table4,
    /// Single bitmap cache *and* TLB at the central cube (Fig. 15's
    /// "unified design").
    Unified,
    /// Per-cube slices of both (Fig. 15's "distributed design").
    Distributed,
}

/// One referent processed by a Scan&Push invocation, with the dependent
/// action the unit performs once the referent's header returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanRef {
    /// The referent object's address (its header is loaded). `NULL` refs
    /// are filtered out before this point.
    pub referent: VAddr,
    /// What happens after the header arrives.
    pub action: ScanAction,
}

/// The dependent action after a referent's header load (Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanAction {
    /// MinorGC: unmarked referent → push onto the object stack.
    Push {
        /// Simulated address of the stack slot written.
        stack_slot: VAddr,
    },
    /// MinorGC: already-forwarded referent → update the referring field.
    UpdateField {
        /// The field slot rewritten with the forwarding pointer.
        field_slot: VAddr,
    },
    /// MinorGC: forwarded referent staying young, holder in Old → update
    /// the field *and* dirty the holder's card.
    UpdateFieldAndCard {
        /// The field slot rewritten.
        field_slot: VAddr,
        /// The card byte dirtied.
        card_addr: VAddr,
    },
    /// MinorGC: promoted holder keeps a young ref → dirty its card.
    UpdateCard {
        /// The card byte's address.
        card_addr: VAddr,
    },
    /// MajorGC: unmarked referent → `mark_obj` (begin + end bitmap RMWs
    /// through the bitmap cache) then push.
    MarkAndPush {
        /// The 8 B begin-map word the RMW touches.
        beg_word: VAddr,
        /// The 8 B end-map word the RMW touches.
        end_word: VAddr,
        /// The stack slot written.
        stack_slot: VAddr,
    },
    /// Nothing further (already marked in MajorGC).
    None,
}

/// Per-primitive offload counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrimStats {
    /// Offloads served.
    pub offloads: u64,
    /// Total unit-busy time.
    pub busy: Ps,
    /// Payload bytes the primitive moved or scanned.
    pub bytes: u64,
    /// Total request-transport time (host → unit arrival).
    pub transport: Ps,
    /// Total command-queue wait (arrival → unit start).
    pub queue: Ps,
}

/// Component-level dynamic energy of the accelerator, picojoules.
///
/// §5.3: "energy consumption of general components (i.e., queues, metadata
/// arrays, TLB, and bitmap cache) is negligible compared to the total
/// energy consumption of Charon (maximum 3.18% for ALS)". The per-event
/// constants below are derived from the Table 4 component areas at 40 nm
/// (documented defaults; the paper publishes only the aggregate claim).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ComponentEnergy {
    /// Processing-unit datapath energy (the dominant share).
    pub units_pj: f64,
    /// Command/request queue energy (per offload + per memory request).
    pub queues_pj: f64,
    /// Accelerator TLB lookups.
    pub tlb_pj: f64,
    /// Bitmap-cache accesses.
    pub bitmap_cache_pj: f64,
}

impl ComponentEnergy {
    /// Total accelerator dynamic energy, picojoules.
    pub fn total_pj(&self) -> f64 {
        self.units_pj + self.queues_pj + self.tlb_pj + self.bitmap_cache_pj
    }

    /// Fraction contributed by the general components (everything but the
    /// processing units) — the paper's ≤ 3.18% claim.
    pub fn general_fraction(&self) -> f64 {
        let t = self.total_pj();
        if t == 0.0 {
            0.0
        } else {
            (self.queues_pj + self.tlb_pj + self.bitmap_cache_pj) / t
        }
    }
}

/// Device-wide statistics.
#[derive(Debug, Clone, Default)]
pub struct CharonStats {
    /// Indexed by [`PrimType`] discriminant.
    pub prims: [PrimStats; 4],
    /// Component-level dynamic energy.
    pub energy: ComponentEnergy,
}

impl CharonStats {
    /// Stats for one primitive.
    pub fn prim(&self, p: PrimType) -> PrimStats {
        self.prims[p.encode() as usize]
    }

    /// Total offloads.
    pub fn total_offloads(&self) -> u64 {
        self.prims.iter().map(|p| p.offloads).sum()
    }

    /// Total unit-busy time across primitives.
    pub fn total_busy(&self) -> Ps {
        self.prims.iter().map(|p| p.busy).sum()
    }
}

impl fmt::Display for CharonStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in PrimType::ALL {
            let s = self.prim(p);
            writeln!(
                f,
                "{p}: {} offloads, busy {}, {:.2} MB, transport {}, queue {}",
                s.offloads,
                s.busy,
                s.bytes as f64 / 1e6,
                s.transport,
                s.queue
            )?;
        }
        Ok(())
    }
}

/// The assembled accelerator.
#[derive(Debug, Clone)]
pub struct CharonDevice {
    cfg: SystemConfig,
    placement: Placement,
    structure: StructureMode,
    sched: Scheduler,
    copy_units: UnitPool,
    bc_units: UnitPool,
    sp_units: UnitPool,
    mai: Vec<Mai>,
    tlb: AccelTlb,
    bitmap_cache: BitmapCache,
    init: Option<InitializeParams>,
    stats: CharonStats,
}

/// Granularity of the Copy/Search unit's streamed requests (the maximum
/// HMC packet payload, §4.2).
const STREAM_GRANULE: u64 = 256;
/// Minimum HMC access granularity (§4.5's over-fetch remark).
const MIN_ACCESS: u32 = 16;

// Per-event dynamic energies (pJ), scaled from the Table 4 areas at 40 nm.
// Datapath work dominates; SRAM-structure events are an order of magnitude
// cheaper — which is what makes §5.3's "general components are negligible"
// come out.
/// Unit datapath energy per byte processed.
const UNIT_PJ_PER_BYTE: f64 = 0.18;
/// Queue write+read energy per offload packet.
const QUEUE_PJ_PER_OFFLOAD: f64 = 3.0;
/// Request-queue energy per memory request.
const QUEUE_PJ_PER_REQUEST: f64 = 0.6;
/// TLB CAM lookup energy.
const TLB_PJ_PER_LOOKUP: f64 = 0.9;
/// Bitmap-cache SRAM access energy.
const BITMAP_PJ_PER_ACCESS: f64 = 1.1;

impl CharonDevice {
    /// Builds the device for the given system configuration, placement and
    /// structure mode. The default paper configuration is
    /// `(MemorySide, Unified)` — one bitmap cache at the center (Table 4)
    /// — with Scan&Push concentrated on the central cube.
    pub fn new(cfg: &SystemConfig, placement: Placement, structure: StructureMode) -> CharonDevice {
        let cubes = cfg.hmc.cubes;
        let ch = &cfg.charon;
        let (copy_units, bc_units, sp_units, mai_count) = match placement {
            Placement::MemorySide => (
                UnitPool::spread(ch.copy_search_units, cubes),
                UnitPool::spread(ch.bitmap_count_units, cubes),
                UnitPool::concentrated(ch.scan_push_units, cubes, Scheduler::CENTER),
                cubes,
            ),
            Placement::CpuSide => (
                UnitPool::concentrated(ch.copy_search_units, cubes, 0),
                UnitPool::concentrated(ch.bitmap_count_units, cubes, 0),
                UnitPool::concentrated(ch.scan_push_units, cubes, 0),
                1,
            ),
        };
        let (tlb_mode, slice_mode) = match structure {
            StructureMode::Table4 => (TlbMode::Distributed, SliceMode::Unified),
            StructureMode::Unified => (TlbMode::Unified, SliceMode::Unified),
            StructureMode::Distributed => (TlbMode::Distributed, SliceMode::Distributed),
        };
        let bitmap_cache = match placement {
            Placement::MemorySide => BitmapCache::new(slice_mode, cubes, ch.bitmap_cache, ch.unit_freq),
            Placement::CpuSide => BitmapCache::new_host_side(ch.bitmap_cache, ch.unit_freq),
        };
        CharonDevice {
            cfg: cfg.clone(),
            placement,
            structure,
            sched: Scheduler::new(cfg.hmc.clone()),
            copy_units,
            bc_units,
            sp_units,
            mai: (0..mai_count).map(|_| Mai::new(ch.mai_entries, ch.unit_freq)).collect(),
            tlb: AccelTlb::new(tlb_mode, cubes, ch.tlb_entries_per_cube, ch.unit_freq),
            bitmap_cache,
            init: None,
            stats: CharonStats::default(),
        }
    }

    /// The `initialize()` intrinsic (§4.1): ships global addresses to every
    /// cube's memory-mapped registers. Called once at program launch.
    pub fn initialize(&mut self, params: InitializeParams) {
        self.init = Some(params);
    }

    /// Whether `initialize()` has run.
    pub fn is_initialized(&self) -> bool {
        self.init.is_some()
    }

    /// The placement under test.
    pub fn placement(&self) -> Placement {
        self.placement
    }

    /// The structure mode under test.
    pub fn structure(&self) -> StructureMode {
        self.structure
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CharonStats {
        &self.stats
    }

    /// Bitmap-cache statistics (the paper reports ≈ 90 % hits).
    pub fn bitmap_cache_stats(&self) -> charon_sim::stats::CacheStats {
        self.bitmap_cache.stats()
    }

    /// TLB statistics `(lookups, remote_lookups)`.
    pub fn tlb_stats(&self) -> (u64, u64) {
        self.tlb.stats()
    }

    fn node_of(&self, cube: usize) -> Node {
        match self.placement {
            Placement::MemorySide => Node::Cube(cube),
            Placement::CpuSide => Node::Host,
        }
    }

    fn mai_idx(&self, cube: usize) -> usize {
        match self.placement {
            Placement::MemorySide => cube,
            Placement::CpuSide => 0,
        }
    }

    /// One unit memory request: MAI slot + issue cycle, translation,
    /// fabric access. `stream` is the issuing offload's in-flight window.
    #[allow(clippy::too_many_arguments)]
    fn unit_mem(
        &mut self,
        host: &mut HostTiming,
        stream: &mut charon_sim::issue::Window,
        cube: usize,
        addr: VAddr,
        bytes: u32,
        op: DramOp,
        now: Ps,
    ) -> Ps {
        let mi = self.mai_idx(cube);
        let t = self.mai[mi].issue(stream, now);
        let t = match self.placement {
            Placement::MemorySide => {
                let dest = host.fabric.cube_of(addr.0).unwrap_or(0);
                self.tlb.translate(&mut host.fabric, cube, dest, t)
            }
            // CPU-side units use the host MMU: one cycle, no hops.
            Placement::CpuSide => t + self.cfg.charon.unit_freq.period(),
        };
        let done = host.fabric.access(self.node_of(cube), addr.0, bytes, op, t);
        stream.complete(done);
        done
    }

    /// A batched streaming run: `bytes` of contiguous memory issued as one
    /// run of [`STREAM_GRANULE`]-sized unit requests. The run occupies one
    /// MAI window slot for its head, takes one cube issue cycle per chunk
    /// (metered as a batch), translates once at the head (the unit's
    /// sequential walk reuses the translation), and streams the fabric
    /// accesses through [`charon_sim::host::MemFabric::access_many`].
    ///
    /// Returns the completion of the head chunk (for dependent consumers
    /// that pipeline on the first datum) and of the whole run.
    #[allow(clippy::too_many_arguments)]
    fn unit_stream_run(
        &mut self,
        host: &mut HostTiming,
        stream: &mut charon_sim::issue::Window,
        cube: usize,
        addr: VAddr,
        bytes: u64,
        op: DramOp,
        now: Ps,
    ) -> BatchCompletion {
        debug_assert!(bytes > 0);
        let chunks = bytes.div_ceil(STREAM_GRANULE).max(1);
        let mi = self.mai_idx(cube);
        let issued = self.mai[mi].issue_many(stream, now, chunks);
        let t = match self.placement {
            Placement::MemorySide => {
                let dest = host.fabric.cube_of(addr.0).unwrap_or(0);
                self.tlb.translate(&mut host.fabric, cube, dest, issued.first)
            }
            Placement::CpuSide => issued.first + self.cfg.charon.unit_freq.period(),
        };
        let run = host.fabric.access_many(self.node_of(cube), addr.0, bytes, op, t);
        let last = run.last.max(issued.last);
        stream.complete(last);
        BatchCompletion { first: run.first, last }
    }

    /// Aggregate MAI issue-meter occupancy across all cubes.
    pub fn mai_occupancy(&self) -> BwOccupancy {
        self.mai.iter().map(Mai::occupancy).fold(BwOccupancy::default(), |a, b| a + b)
    }

    /// Invalidates the host-cached lines of `[start, start+bytes)` before a
    /// unit touches them (§4.1). Dirty hits are written back to memory
    /// before `now`; returns the time the region is safe to read.
    fn clflush_range(&mut self, host: &mut HostTiming, start: VAddr, bytes: u64, now: Ps) -> Ps {
        // Both placements sit below the cache hierarchy (§4.6 likens the
        // CPU-side variant to a unit "near the memory controller"), so both
        // must invalidate host-cached copies before touching memory.
        let line = 64u64;
        let mut t = now;
        let mut a = start.align_down(line);
        let end = start.add_bytes(bytes);
        while a < end {
            if host.clflush_line(a.0) {
                t = host.fabric.access(Node::Host, a.0, line as u32, DramOp::Write, t);
            }
            a = a.add_bytes(line);
        }
        t
    }

    fn send_request(&mut self, host: &mut HostTiming, cube: usize, now: Ps) -> Ps {
        match self.placement {
            Placement::MemorySide => host.fabric.control_packet(Node::Host, Node::Cube(cube), REQUEST_BYTES, now),
            Placement::CpuSide => now,
        }
    }

    fn send_response(&mut self, host: &mut HostTiming, cube: usize, prim: PrimType, done: Ps) -> Ps {
        match self.placement {
            Placement::MemorySide => {
                host.fabric
                    .control_packet(Node::Cube(cube), Node::Host, prim.response_bytes(), done)
            }
            Placement::CpuSide => done,
        }
    }

    fn record(&mut self, prim: PrimType, start: Ps, end: Ps, bytes: u64) {
        let s = &mut self.stats.prims[prim.encode() as usize];
        s.offloads += 1;
        s.busy += end - start;
        s.bytes += bytes;
        self.stats.energy.units_pj += bytes as f64 * UNIT_PJ_PER_BYTE;
    }

    /// Folds the per-structure event counters (gathered since the last
    /// call) into the energy account.
    fn settle_component_energy(&mut self) {
        let requests: u64 = self.mai.iter().map(Mai::requests).sum();
        let (lookups, _) = self.tlb.stats();
        let bc = self.bitmap_cache.stats().accesses();
        let e = &mut self.stats.energy;
        // Absolute counters: recompute from totals (idempotent).
        e.tlb_pj = lookups as f64 * TLB_PJ_PER_LOOKUP;
        e.bitmap_cache_pj = bc as f64 * BITMAP_PJ_PER_ACCESS;
        let per_offload: f64 = self.stats.prims.iter().map(|p| p.offloads as f64).sum::<f64>() * QUEUE_PJ_PER_OFFLOAD;
        e.queues_pj = per_offload + requests as f64 * QUEUE_PJ_PER_REQUEST;
    }

    /// The component-level energy account (recomputed on read).
    pub fn component_energy(&mut self) -> ComponentEnergy {
        self.settle_component_energy();
        self.stats.energy
    }

    fn record_wait(&mut self, prim: PrimType, now: Ps, arrive: Ps, queue_delay: Ps) {
        let s = &mut self.stats.prims[prim.encode() as usize];
        s.transport += arrive - now;
        s.queue += queue_delay;
    }

    // --- the four primitives -------------------------------------------

    /// Offloads a *Copy* of `bytes` from `src` to `dst` (§4.2). Returns the
    /// time the host thread unblocks.
    pub fn offload_copy(&mut self, host: &mut HostTiming, now: Ps, src: VAddr, dst: VAddr, bytes: u64) -> Ps {
        debug_assert!(bytes > 0);
        let cube = match self.placement {
            Placement::MemorySide => self.sched.cube_for(PrimType::Copy, src),
            Placement::CpuSide => 0,
        };
        let arrive = self.send_request(host, cube, now);
        let start = arrive;

        // Host copies of the source and destination must be invalidated.
        let flushed = self.clflush_range(host, src, bytes, start);
        let flushed = self.clflush_range(host, dst, bytes, flushed);

        // Reads stream out one per cycle as long as the MAI accepts
        // (§4.2); the store stream starts when the head load returns and
        // overlaps the remaining loads (chunk-pipelined, batched).
        let mut stream = self.mai[self.mai_idx(cube)].stream();
        let reads = self.unit_stream_run(host, &mut stream, cube, src, bytes, DramOp::Read, flushed);
        let writes = self.unit_stream_run(host, &mut stream, cube, dst, bytes, DramOp::Write, reads.first);
        let end = reads.last.max(writes.last);
        let served = self.copy_units.charge(cube, start, end - start);
        let queue_delay = served.saturating_sub(end);
        let end = end.max(served);
        self.record(PrimType::Copy, start, end, 2 * bytes);
        self.record_wait(PrimType::Copy, now, arrive, queue_delay);
        self.send_response(host, cube, PrimType::Copy, end)
    }

    /// Offloads a *Search* over `scanned_bytes` of the card table starting
    /// at `start_addr` (§4.2); the functional result (found or not) was
    /// computed by the caller and determines how much was scanned.
    pub fn offload_search(&mut self, host: &mut HostTiming, now: Ps, start_addr: VAddr, scanned_bytes: u64) -> Ps {
        let cube = match self.placement {
            Placement::MemorySide => self.sched.cube_for(PrimType::Search, start_addr),
            Placement::CpuSide => 0,
        };
        let arrive = self.send_request(host, cube, now);
        let start = arrive;
        let flushed = self.clflush_range(host, start_addr, scanned_bytes, start);

        let mut stream = self.mai[self.mai_idx(cube)].stream();
        let read_bytes = scanned_bytes.max(u64::from(MIN_ACCESS));
        let run = self.unit_stream_run(host, &mut stream, cube, start_addr, read_bytes, DramOp::Read, flushed);
        let end = flushed.max(run.last);
        // Search shares the Copy unit (§4.2).
        let served = self.copy_units.charge(cube, start, end - start);
        let queue_delay = served.saturating_sub(end);
        let end = end.max(served);
        self.record(PrimType::Search, start, end, scanned_bytes);
        self.record_wait(PrimType::Search, now, arrive, queue_delay);
        self.send_response(host, cube, PrimType::Search, end)
    }

    /// Offloads a *Bitmap Count* reading the given `(start, bytes)` spans
    /// of the begin and end maps through the bitmap cache (§4.3). The host
    /// never writes the bitmaps, so no clflush probing is needed.
    pub fn offload_bitmap_count(&mut self, host: &mut HostTiming, now: Ps, spans: &[(VAddr, u64)]) -> Ps {
        let first = spans.first().map(|&(a, _)| a).unwrap_or(VAddr::NULL);
        // "This primitive is scheduled to the cube on which the bitmap
        // address falls" (§4.3). Under the unified design the cache sits on
        // the central cube, so off-center units exchange one range-granular
        // request/response with it per span; distributed slices are local.
        let cube = match self.placement {
            Placement::CpuSide => 0,
            Placement::MemorySide => self.sched.cube_for(PrimType::BitmapCount, first),
        };
        let _ = first;
        let arrive = self.send_request(host, cube, now);
        let start = arrive;
        let mut stream = self.mai[self.mai_idx(cube)].stream();

        // The unit knows the exact read set up front and issues everything
        // immediately (§4.3). Short ranges — the repeated region-tail
        // queries of the adjust phase — go through the bitmap cache, whose
        // temporal locality the paper measures at ≈ 90 % hits. Long ranges
        // (whole-region summary scans) stream through the MAI at full
        // packet granularity, like Copy does; caching them would only
        // thrash the 8 KB cache.
        const CACHED_SPAN_LIMIT: u64 = 128;
        let mut end = start;
        let mut total = 0;
        for &(span_start, bytes) in spans {
            if bytes <= CACHED_SPAN_LIMIT {
                let done = self.bitmap_cache.access_range(
                    &mut host.fabric,
                    cube,
                    span_start.0,
                    bytes,
                    AccessKind::Read,
                    start,
                );
                end = end.max(done);
                total += bytes;
            } else {
                let run = self.unit_stream_run(host, &mut stream, cube, span_start, bytes, DramOp::Read, start);
                end = end.max(run.last);
                total += bytes;
            }
        }
        let served = self.bc_units.charge(cube, start, end - start);
        let queue_delay = served.saturating_sub(end);
        let end = end.max(served);
        self.record(PrimType::BitmapCount, start, end, total);
        self.record_wait(PrimType::BitmapCount, now, arrive, queue_delay);
        self.send_response(host, cube, PrimType::BitmapCount, end)
    }

    /// Offloads a *Scan&Push* over an object whose reference fields occupy
    /// `field_bytes` starting at `fields_start`; `refs` describes each
    /// non-null referent and the dependent action (§4.4).
    ///
    /// Unlike Copy/Search/Bitmap Count, this primitive stays on the
    /// per-request path: its referent-header loads are irregular and its
    /// actions depend on each header's return time, so batching the runs
    /// would erase exactly the dependent-load behaviour §4.4 models.
    pub fn offload_scan_push(
        &mut self,
        host: &mut HostTiming,
        now: Ps,
        fields_start: VAddr,
        field_bytes: u64,
        refs: &[ScanRef],
    ) -> Ps {
        let cube = match self.placement {
            Placement::MemorySide => Scheduler::CENTER,
            Placement::CpuSide => 0,
        };
        let arrive = self.send_request(host, cube, now);
        let start = arrive;
        let mut stream = self.mai[self.mai_idx(cube)].stream();
        let flushed = self.clflush_range(host, fields_start, field_bytes, start);

        // Stream the field loads; remember when each granule's pointers
        // become available.
        let granules = field_bytes.div_ceil(STREAM_GRANULE).max(1);
        let mut granule_done = Vec::with_capacity(granules as usize);
        for i in 0..granules {
            let off = i * STREAM_GRANULE;
            let len = STREAM_GRANULE.min(field_bytes.saturating_sub(off)).max(MIN_ACCESS as u64) as u32;
            let d = self.unit_mem(host, &mut stream, cube, fields_start.add_bytes(off), len, DramOp::Read, flushed);
            granule_done.push(d);
        }

        // Phase 1: the batch of referent-header loads (a 16 B
        // minimum-granularity load each), issued as fast as the MAI
        // accepts — this is the MLP the unit exploits (§4.4).
        let refs_per_granule = (STREAM_GRANULE / 8) as usize;
        let mut header_done = Vec::with_capacity(refs.len());
        for (i, r) in refs.iter().enumerate() {
            let avail = granule_done[(i / refs_per_granule).min(granule_done.len() - 1)];
            header_done.push(self.unit_mem(host, &mut stream, cube, r.referent, MIN_ACCESS, DramOp::Read, avail));
        }
        // Phase 2: each referent's dependent action fires when its header
        // returns.
        let mut end = *granule_done.iter().max().expect("at least one granule");
        for (i, r) in refs.iter().enumerate() {
            let h_done = header_done[i];
            let a_done = match r.action {
                ScanAction::Push { stack_slot } => {
                    self.unit_mem(host, &mut stream, cube, stack_slot, MIN_ACCESS, DramOp::Write, h_done)
                }
                ScanAction::UpdateField { field_slot } => {
                    self.unit_mem(host, &mut stream, cube, field_slot, MIN_ACCESS, DramOp::Write, h_done)
                }
                ScanAction::UpdateFieldAndCard { field_slot, card_addr } => {
                    let w = self.unit_mem(host, &mut stream, cube, field_slot, MIN_ACCESS, DramOp::Write, h_done);
                    self.unit_mem(host, &mut stream, cube, card_addr, MIN_ACCESS, DramOp::Write, w)
                }
                ScanAction::UpdateCard { card_addr } => {
                    self.unit_mem(host, &mut stream, cube, card_addr, MIN_ACCESS, DramOp::Write, h_done)
                }
                ScanAction::MarkAndPush { beg_word, end_word, stack_slot } => {
                    // mark_obj: atomic RMWs on the begin and end map words,
                    // served by the bitmap cache (§4.5).
                    let m1 = self
                        .bitmap_cache
                        .access(&mut host.fabric, cube, beg_word.0, AccessKind::Write, h_done);
                    let m2 = self
                        .bitmap_cache
                        .access(&mut host.fabric, cube, end_word.0, AccessKind::Write, m1);
                    self.unit_mem(host, &mut stream, cube, stack_slot, MIN_ACCESS, DramOp::Write, m2)
                }
                ScanAction::None => h_done,
            };
            end = end.max(a_done);
        }
        let served = self.sp_units.charge(cube, start, end - start);
        let queue_delay = served.saturating_sub(end);
        let end = end.max(served);
        self.record(PrimType::ScanPush, start, end, field_bytes + refs.len() as u64 * 16);
        self.record_wait(PrimType::ScanPush, now, arrive, queue_delay);
        self.send_response(host, cube, PrimType::ScanPush, end)
    }

    /// Flushes the bitmap cache (after each MajorGC phase, §4.5).
    pub fn flush_bitmap_cache(&mut self, host: &mut HostTiming, now: Ps) -> Ps {
        self.bitmap_cache.flush(&mut host.fabric, now)
    }

    /// Total unit-busy time (all pools), for occupancy reporting.
    pub fn total_unit_busy(&self) -> Ps {
        self.copy_units.busy_time() + self.bc_units.busy_time() + self.sp_units.busy_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(placement: Placement) -> (HostTiming, CharonDevice) {
        let cfg = SystemConfig::table2_hmc();
        let host = HostTiming::new(&cfg);
        let dev = CharonDevice::new(&cfg, placement, StructureMode::Unified);
        (host, dev)
    }

    #[test]
    fn copy_moves_bytes_and_returns_later() {
        let (mut host, mut dev) = setup(Placement::MemorySide);
        let t = dev.offload_copy(&mut host, Ps::ZERO, VAddr(0x10000), VAddr(0x50000), 4096);
        assert!(t > Ps::from_ns(10.0));
        let s = dev.stats().prim(PrimType::Copy);
        assert_eq!(s.offloads, 1);
        assert_eq!(s.bytes, 8192); // read + write
                                   // DRAM saw the traffic.
        assert!(host.fabric.stats().dram.total_bytes() >= 8192);
    }

    #[test]
    fn copy_throughput_exceeds_offchip_bandwidth() {
        // A large local copy must run faster than the 80 GB/s host link
        // could ever stream it — the internal-bandwidth advantage.
        let (mut host, mut dev) = setup(Placement::MemorySide);
        let bytes = 512 * 1024u64;
        let t = dev.offload_copy(&mut host, Ps::ZERO, VAddr(0), VAddr(0x4_0000), bytes);
        let gbps = (2 * bytes) as f64 / t.as_secs() / 1e9;
        assert!(gbps > 80.0, "near-memory copy only reached {gbps:.1} GB/s");
    }

    #[test]
    fn cpu_side_copy_is_slower_than_memory_side() {
        let bytes = 256 * 1024u64;
        let (mut h1, mut d1) = setup(Placement::MemorySide);
        let t_mem = d1.offload_copy(&mut h1, Ps::ZERO, VAddr(0), VAddr(0x4_0000), bytes);
        let (mut h2, mut d2) = setup(Placement::CpuSide);
        let t_cpu = d2.offload_copy(&mut h2, Ps::ZERO, VAddr(0), VAddr(0x4_0000), bytes);
        assert!(t_cpu.0 as f64 > 1.2 * t_mem.0 as f64, "CPU-side ({t_cpu}) should trail memory-side ({t_mem})");
    }

    #[test]
    fn search_scans_and_responds_with_value_packet() {
        let (mut host, mut dev) = setup(Placement::MemorySide);
        let t = dev.offload_search(&mut host, Ps::ZERO, VAddr(0x8000), 2048);
        assert!(t > Ps::ZERO);
        assert_eq!(dev.stats().prim(PrimType::Search).offloads, 1);
    }

    #[test]
    fn bitmap_count_reuses_cache_across_calls() {
        let (mut host, mut dev) = setup(Placement::MemorySide);
        // Small spans — the repeated region-tail queries — go through the
        // bitmap cache and hit on reuse.
        let spans = [(VAddr(0x1000), 64u64), (VAddr(0x9000), 64u64)];
        let t1 = dev.offload_bitmap_count(&mut host, Ps::ZERO, &spans);
        let t2 = dev.offload_bitmap_count(&mut host, t1, &spans) - t1;
        assert!(t2 < t1, "warm call ({t2}) should beat cold call ({t1})");
        assert!(dev.bitmap_cache_stats().hit_rate() > 0.4);
        // Large spans — whole-region summary scans — stream via the MAI
        // and leave the cache untouched.
        let before = dev.bitmap_cache_stats().accesses();
        dev.offload_bitmap_count(&mut host, t1, &[(VAddr(0x2000), 4096u64)]);
        assert_eq!(dev.bitmap_cache_stats().accesses(), before);
    }

    #[test]
    fn scan_push_handles_all_action_kinds() {
        let (mut host, mut dev) = setup(Placement::MemorySide);
        let refs = [
            ScanRef { referent: VAddr(0x2000), action: ScanAction::Push { stack_slot: VAddr(0x9_0000) } },
            ScanRef { referent: VAddr(0x3000), action: ScanAction::UpdateField { field_slot: VAddr(0x1008) } },
            ScanRef { referent: VAddr(0x4000), action: ScanAction::UpdateCard { card_addr: VAddr(0x8_0000) } },
            ScanRef {
                referent: VAddr(0x5000),
                action: ScanAction::MarkAndPush {
                    beg_word: VAddr(0x7_0000),
                    end_word: VAddr(0x7_8000),
                    stack_slot: VAddr(0x9_0008),
                },
            },
            ScanRef {
                referent: VAddr(0x5800),
                action: ScanAction::UpdateFieldAndCard { field_slot: VAddr(0x1010), card_addr: VAddr(0x8_0001) },
            },
            ScanRef { referent: VAddr(0x6000), action: ScanAction::None },
        ];
        let t = dev.offload_scan_push(&mut host, Ps::ZERO, VAddr(0x1000), 5 * 8, &refs);
        assert!(t > Ps::ZERO);
        assert_eq!(dev.stats().prim(PrimType::ScanPush).offloads, 1);
    }

    #[test]
    fn units_queue_when_busy() {
        let (mut host, mut dev) = setup(Placement::MemorySide);
        // Issue more copies on the same cube than it has units; later ones
        // queue behind earlier ones.
        let mut ends = Vec::new();
        for i in 0..4u64 {
            ends.push(dev.offload_copy(&mut host, Ps::ZERO, VAddr(i * 4096), VAddr(0x8_0000 + i * 4096), 4096));
        }
        assert!(ends[3] > ends[0], "queueing must delay the last offload");
    }

    #[test]
    fn initialize_records_params() {
        let (_, mut dev) = setup(Placement::MemorySide);
        assert!(!dev.is_initialized());
        dev.initialize(InitializeParams {
            heap_base: VAddr(0x1000_0000),
            beg_map_base: VAddr(0x2000_0000),
            bitmap_offset: 0x10_0000,
            card_table_base: VAddr(0x3000_0000),
        });
        assert!(dev.is_initialized());
    }

    #[test]
    fn clflush_writes_back_dirty_host_lines() {
        let (mut host, mut dev) = setup(Placement::MemorySide);
        // Host dirties a line inside the copy source.
        host.mem_access(0, Ps::ZERO, 0x10040, 8, charon_sim::cache::AccessKind::Write);
        let before = host.fabric.stats().dram.write_bytes;
        dev.offload_copy(&mut host, Ps::from_us(1.0), VAddr(0x10000), VAddr(0x5_0000), 256);
        let after = host.fabric.stats().dram.write_bytes;
        assert!(after > before, "dirty host line must be written back before the unit reads");
    }
}
