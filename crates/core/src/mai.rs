//! The Memory Access Interface (MAI, §4.1).
//!
//! Every cube's logic layer has one MAI: a request buffer whose entries
//! hold the issuing unit's id and optional metadata until the memory
//! response returns — "similar to what MSHR does in host cores". Two
//! constraints are modeled:
//!
//! * each *offload* streams through a bounded window of in-flight requests
//!   (the buffer entries its unit can occupy), and
//! * the cube as a whole issues at most one request per logic-layer cycle,
//!   metered across all units with epoch accounting so that
//!   loosely-ordered GC threads don't serialize spuriously.

use charon_sim::bwres::{BatchCompletion, BwOccupancy, EpochBw};
use charon_sim::issue::Window;
use charon_sim::time::{Freq, Ps};

/// Metering epoch for the issue-rate limit.
const MAI_EPOCH: Ps = Ps(1_000_000); // 1 us

/// One cube's MAI.
#[derive(Debug, Clone)]
pub struct Mai {
    rate: EpochBw,
    entries: usize,
    requests: u64,
    parity_errors: u64,
}

impl Mai {
    /// Creates an MAI with `entries` request-buffer slots, issuing at the
    /// logic-layer clock.
    pub fn new(entries: usize, unit_freq: Freq) -> Mai {
        Mai { rate: EpochBw::from_period(unit_freq.period(), MAI_EPOCH), entries, requests: 0, parity_errors: 0 }
    }

    /// Request-buffer capacity.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Total requests that passed through.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// A fresh per-offload in-flight window over this MAI's buffer.
    pub fn stream(&self) -> Window {
        Window::new(self.entries, Ps::ZERO)
    }

    /// Issues one request from an offload's `stream` at `now`: takes a
    /// buffer slot (possibly waiting for one to free) and a cube issue
    /// cycle. Returns the time the request leaves the cube.
    pub fn issue(&mut self, stream: &mut Window, now: Ps) -> Ps {
        self.requests += 1;
        let slot = stream.issue(now);
        self.rate.reserve(slot, 1)
    }

    /// Issues `n` requests of one streaming run together at `now`: the run
    /// takes one buffer slot for its head (batched-MLP simplification — a
    /// streaming unit's run occupies the window as one logical request)
    /// and `n` cube issue cycles metered as a batch. Returns when the
    /// first and last request leave the cube.
    pub fn issue_many(&mut self, stream: &mut Window, now: Ps, n: u64) -> BatchCompletion {
        debug_assert!(n >= 1);
        self.requests += n;
        let slot = stream.issue(now);
        self.rate.reserve_many(slot, n, 1)
    }

    /// Epoch-meter occupancy of the issue-rate limiter.
    pub fn occupancy(&self) -> BwOccupancy {
        self.rate.occupancy()
    }

    /// Records an injected request-buffer parity error: the entry is
    /// poisoned, the offload it belonged to never completes, and the host
    /// recovers through its timeout. No issue cycle is metered.
    pub fn record_parity_error(&mut self) {
        self.parity_errors += 1;
    }

    /// Injected parity errors so far.
    pub fn parity_errors(&self) -> u64 {
        self.parity_errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_rate_is_one_per_cycle() {
        let mut m = Mai::new(64, Freq::ghz(1.0));
        let mut s = m.stream();
        // Saturate one epoch's worth of issue slots.
        let mut last = Ps::ZERO;
        for _ in 0..1000 {
            let t = m.issue(&mut s, Ps::ZERO);
            s.complete(t + Ps::from_ns(5.0));
            last = t;
        }
        let over = m.issue(&mut s, Ps::ZERO);
        assert!(over >= Ps::from_us(1.0), "issue rate not enforced: {over} after {last}");
    }

    #[test]
    fn buffer_exhaustion_stalls_the_stream() {
        let mut m = Mai::new(2, Freq::ghz(1.0));
        let mut s = m.stream();
        let t0 = m.issue(&mut s, Ps::ZERO);
        s.complete(t0 + Ps::from_ns(100.0));
        let t1 = m.issue(&mut s, Ps::ZERO);
        s.complete(t1 + Ps::from_ns(100.0));
        // Third request waits for the first response.
        let t2 = m.issue(&mut s, Ps::ZERO);
        assert!(t2 >= Ps::from_ns(100.0), "{t2}");
        assert_eq!(m.requests(), 3);
    }

    #[test]
    fn issue_many_matches_single_issue_metering() {
        let mut a = Mai::new(64, Freq::ghz(1.0));
        let mut b = Mai::new(64, Freq::ghz(1.0));
        let mut sa = a.stream();
        let run = a.issue_many(&mut sa, Ps::ZERO, 500);
        sa.complete(run.last);
        let mut first = Ps::ZERO;
        let mut last = Ps::ZERO;
        for i in 0..500 {
            // Same meter sequence: every request of the batch enters the
            // rate limiter at the head slot's time.
            let t = b.rate.reserve(Ps::ZERO, 1);
            if i == 0 {
                first = t;
            }
            last = last.max(t);
        }
        assert_eq!(run.first, first);
        assert_eq!(run.last, last);
        assert_eq!(a.requests(), 500);
        assert_eq!(a.occupancy().total_units, b.occupancy().total_units);
    }

    #[test]
    fn independent_streams_share_only_the_rate() {
        let mut m = Mai::new(4, Freq::ghz(1.0));
        let mut a = m.stream();
        let mut b = m.stream();
        let ta = m.issue(&mut a, Ps::from_ns(500.0));
        a.complete(ta);
        // A stream at an earlier simulated time is not blocked by the
        // other stream's buffer slots.
        let tb = m.issue(&mut b, Ps::from_ns(10.0));
        b.complete(tb);
        assert!(tb < Ps::from_ns(100.0), "phantom cross-stream stall: {tb}");
    }
}
