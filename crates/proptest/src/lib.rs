//! Offline drop-in for the subset of `proptest` 1.x used by this workspace.
//!
//! The build environment has no registry access, so the real `proptest`
//! crate cannot be resolved. This path crate supplies the pieces the
//! workspace's property tests actually call: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, integer-range / tuple /
//! `prop_map` / `collection::vec` / `bool::weighted` / `option::weighted` /
//! `any::<T>()` strategies, and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` result macros.
//!
//! Differences from real proptest, deliberate for an offline shim:
//! - **No shrinking.** A failing case reports its generated inputs verbatim
//!   instead of a minimized counterexample.
//! - **Deterministic seeding.** Case N of test T always sees the same
//!   inputs (seeded from the test name), so failures reproduce exactly;
//!   `proptest-regressions` files are ignored.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value-tree/shrinking layer: a
    /// strategy is just a deterministic function of the test RNG.
    pub trait Strategy {
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map: f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod arbitrary {
    //! `any::<T>()` for primitive types.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized + Debug {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`], convertible from the usual range types.
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange { min: *r.start(), max_inclusive: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max_inclusive: n }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A `Vec` of values from `elem`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`weighted`].
    pub struct Weighted {
        p: f64,
    }

    impl Strategy for Weighted {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_f64() < self.p
        }
    }

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        Weighted { p }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`weighted`].
    pub struct Weighted<S> {
        p: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Draw the probability first so inner consumption only happens
            // on Some — mirrors real proptest's lazy inner generation.
            if rng.next_f64() < self.p {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Some(inner)` with probability `p`, else `None`.
    pub fn weighted<S: Strategy>(p: f64, inner: S) -> Weighted<S> {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        Weighted { p, inner }
    }
}

pub mod test_runner {
    //! Case execution: config, RNG, and the driver the `proptest!` macro
    //! expands to.

    /// Runner configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; aborts the whole test.
        Fail(String),
        /// The inputs were rejected by `prop_assume!`; the case is retried.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic per-case RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Output of one generated case: the pretty-printed inputs plus the
    /// caught outcome of running the body on them.
    pub type CaseOutcome = (String, std::thread::Result<Result<(), TestCaseError>>);

    /// Drives `cfg.cases` accepted cases of `case`, panicking with the
    /// generated inputs on the first failure. Called by `proptest!`.
    pub fn run_proptest<F>(cfg: &Config, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> CaseOutcome,
    {
        let base = fnv1a(name);
        let mut accepted: u32 = 0;
        let mut attempts: u64 = 0;
        let max_attempts = (cfg.cases as u64).saturating_mul(64).max(1024);
        while accepted < cfg.cases {
            attempts += 1;
            assert!(
                attempts <= max_attempts,
                "proptest '{name}': gave up after {attempts} attempts \
                 ({accepted}/{} cases accepted) — prop_assume! rejects too much",
                cfg.cases
            );
            let mut rng = TestRng::from_seed(base ^ attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let (inputs, outcome) = case(&mut rng);
            match outcome {
                Ok(Ok(())) => accepted += 1,
                Ok(Err(TestCaseError::Reject(_))) => continue,
                Ok(Err(TestCaseError::Fail(msg))) => {
                    panic!("proptest '{name}' failed at case {accepted}: {msg}\nwith inputs:\n{inputs}")
                }
                Err(payload) => {
                    eprintln!("proptest '{name}' panicked at case {accepted} with inputs:\n{inputs}");
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Declares deterministic property tests. Supports the real-proptest form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(xs in proptest::collection::vec(0u64..10, 1..20)) {
///         prop_assert!(xs.len() < 20);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_proptest(&($cfg), stringify!($name), |__rng| {
                let mut __inputs = ::std::string::String::new();
                $(
                    let __val = $crate::strategy::Strategy::generate(&($strat), __rng);
                    __inputs.push_str(&format!(
                        "  {} = {:?}\n", stringify!($arg), &__val
                    ));
                    let $arg = __val;
                )+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                (__inputs, __outcome)
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// `assert!` that reports the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that reports the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
                    __l, __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`: {}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// Rejects the current case (it is regenerated, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn strategies_are_deterministic_per_seed() {
        let strat = crate::collection::vec((0u64..100, any::<bool>()), 1..10);
        let a = strat.generate(&mut TestRng::from_seed(9));
        let b = strat.generate(&mut TestRng::from_seed(9));
        assert_eq!(a, b);
    }

    #[test]
    fn prop_map_and_ranges_compose() {
        let strat = (0u32..10).prop_map(|x| x * 2);
        let mut rng = TestRng::from_seed(1);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_runs_and_assumes(x in 0u64..1000, flip in any::<bool>()) {
            prop_assume!(x != 999);
            prop_assert!(x < 1000);
            prop_assert_eq!(flip, flip, "flip {}", flip);
        }

        #[test]
        fn inclusive_ranges_hit_both_ends(x in 0u8..=1) {
            prop_assert!(x <= 1);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(x in 0i32..5) {
            prop_assert!((0..5).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_prop_panics_with_inputs() {
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x too small: {}", x);
            }
        }
        always_fails();
    }
}
