//! Heap-sizing tuning: the Fig. 2 experiment as a user-facing tool.
//!
//! Sweeps the heap factor over one workload and reports GC overhead and
//! collection counts — the trade the paper's introduction motivates:
//! over-provision memory or pay GC time. Pass a workload code as the first
//! argument (default: LR).
//!
//! ```bash
//! cargo run --release --example tuning_heap -- BS
//! ```

use charon::gc::system::System;
use charon::workloads::spec::by_short;
use charon::workloads::{run_workload, RunOptions};

fn main() {
    let short = std::env::args().nth(1).unwrap_or_else(|| "LR".into());
    let spec = by_short(&short).unwrap_or_else(|| panic!("unknown workload {short}; use BS/KM/LR/CC/PR/ALS"));
    println!("workload: {spec}");
    println!("sweeping heap from the minimum (OOM-free) size upward, DDR4 host vs Charon:\n");
    println!(
        "{:>8} {:>10} {:>14} {:>8} {:>8} {:>14} {:>10}",
        "factor", "heap MB", "DDR4 overhead", "minors", "majors", "Charon ovh", "saved"
    );

    for factor in [1.0, 1.25, 1.5, 2.0, 3.0] {
        let opts = RunOptions { heap_factor: Some(factor), ..Default::default() };
        let d = run_workload(&spec, System::ddr4(), &opts).expect("factor >= 1 never OOMs");
        let c = run_workload(&spec, System::charon(), &opts).expect("factor >= 1 never OOMs");
        println!(
            "{:>8.2} {:>10} {:>13.1}% {:>8} {:>8} {:>13.1}% {:>9.1}%",
            factor,
            spec.heap_bytes(factor) >> 20,
            d.gc_overhead() * 100.0,
            d.minor.1,
            d.major.1,
            c.gc_overhead() * 100.0,
            (1.0 - c.gc_time.0 as f64 / d.gc_time.0.max(1) as f64) * 100.0,
        );
    }
    println!("\nReading the table: toward the minimum heap the DDR4 overhead explodes (Fig. 2);");
    println!("Charon flattens the curve, letting the same machine run with less memory headroom.");
}
