//! Trace-driven design-space exploration: record one workload's
//! collections, then sweep machine configurations by replaying the traces
//! — no heap, no mutator, just re-timing.
//!
//! This is how a practitioner would size the accelerator: one slow
//! execution-driven run produces the traces; dozens of cheap replays
//! answer "how many units / how deep an MAI do I actually need?".
//!
//! ```bash
//! cargo run --release --example trace_replay
//! ```

use charon::accel::{CharonDevice, Placement, StructureMode};
use charon::gc::collector::Collector;
use charon::gc::system::System;
use charon::gc::trace::replay;
use charon::heap::heap::{HeapConfig, JavaHeap};
use charon::heap::layout::LayoutParams;
use charon::sim::time::Ps;
use charon::workloads::mutator::Mutator;
use charon::workloads::spec::by_short;

fn main() {
    // 1. One execution-driven run of LR with trace recording on.
    let spec = by_short("LR").expect("LR is in Table 3");
    let mut heap = JavaHeap::new(HeapConfig {
        layout: LayoutParams { heap_bytes: spec.default_heap_bytes(), ..Default::default() },
        ..Default::default()
    });
    let mut m = Mutator::new(spec.clone(), &mut heap);
    let mut sys = System::ddr4();
    sys.record_traces = true;
    let mut gc = Collector::new(sys, &heap, 8);
    m.build_resident(&mut heap, &mut gc).expect("sized not to OOM");
    for _ in 0..spec.supersteps {
        m.superstep(&mut heap, &mut gc).expect("sized not to OOM");
    }
    let traces = gc.sys.traces.clone();
    let ops: usize = traces.iter().map(|t| t.len()).sum();
    println!(
        "recorded {} collections ({} operations, {} primitive invocations) from one LR run\n",
        traces.len(),
        ops,
        traces.iter().map(|t| t.primitive_count()).sum::<usize>()
    );

    // 2. Replay the whole trace set on a grid of configurations.
    let total = |sys: &mut System| -> Ps { traces.iter().map(|t| replay(t, sys, 8).0).sum() };

    let base = total(&mut System::ddr4());
    println!("{:<34}{:>14}{:>10}", "configuration", "GC time", "speedup");
    println!("{:<34}{:>14}{:>10}", "DDR4 host", base.to_string(), "1.00x");
    for (label, units, mai) in [
        ("Charon, 4 copy units, MAI 16", 4usize, 16usize),
        ("Charon, 8 copy units, MAI 64", 8, 64),
        ("Charon, 16 copy units, MAI 64", 16, 64),
        ("Charon, 8 copy units, MAI 256", 8, 256),
    ] {
        let mut sys = System::charon();
        sys.cfg.charon.copy_search_units = units;
        sys.cfg.charon.mai_entries = mai;
        sys.device = Some(CharonDevice::new(&sys.cfg, Placement::MemorySide, StructureMode::Table4));
        let t = total(&mut sys);
        println!("{label:<34}{:>14}{:>9.2}x", t.to_string(), base.0 as f64 / t.0.max(1) as f64);
    }
    println!("\nEach Charon row re-timed the identical operation stream — the execution-driven");
    println!("run happened once. (See charon_gc::trace for the mechanics.)");
}
