//! A GraphChi-style graph workload (the paper's PR) with a per-pause log:
//! the latency view of GC offloading.
//!
//! Graph demographics (§3.2): many small, long-lived, reference-rich
//! vertices — marking-heavy collections where *Scan&Push* and
//! *Bitmap Count* matter and where even the paper's speedups are the most
//! modest. The pause log shows where each platform's time goes, event by
//! event.
//!
//! ```bash
//! cargo run --release --example graphchi_pagerank
//! ```

use charon::gc::collector::{Collector, GcKind};
use charon::gc::system::System;
use charon::heap::heap::{HeapConfig, JavaHeap};
use charon::heap::layout::LayoutParams;
use charon::workloads::mutator::Mutator;
use charon::workloads::spec::by_short;

fn main() {
    let spec = by_short("PR").expect("PR is in Table 3");
    println!("workload: {spec}\n");

    for sys in [System::ddr4(), System::charon()] {
        let label = sys.label();
        let mut heap = JavaHeap::new(HeapConfig {
            layout: LayoutParams { heap_bytes: spec.default_heap_bytes(), ..Default::default() },
            ..Default::default()
        });
        let mut m = Mutator::new(spec.clone(), &mut heap);
        let mut gc = Collector::new(sys, &heap, 8);

        m.build_resident(&mut heap, &mut gc).expect("sized not to OOM");
        for _ in 0..spec.supersteps {
            m.superstep(&mut heap, &mut gc).expect("sized not to OOM");
        }

        println!("[{label}] pause log:");
        for (i, e) in gc.events.iter().enumerate() {
            let what = match e.kind {
                GcKind::Minor => {
                    let s = e.minor.expect("minor stats");
                    format!(
                        "survived {:>5} KB, promoted {:>5} KB, {} dirty cards",
                        s.survived_bytes / 1024,
                        s.promoted_bytes / 1024,
                        s.dirty_cards
                    )
                }
                GcKind::Major => {
                    let s = e.major.expect("major stats");
                    format!(
                        "live {:>6} KB over {} regions, moved {:>6} KB",
                        s.live_bytes / 1024,
                        s.regions,
                        s.moved_bytes / 1024
                    )
                }
            };
            println!(
                "  #{i:<3} {:<8} at {:>12}  pause {:>12}  {what}",
                e.kind.to_string(),
                e.start.to_string(),
                e.wall.to_string()
            );
        }
        let max_pause = gc.events.iter().map(|e| e.wall).max().unwrap_or_default();
        println!("[{label}] {} pauses, total {}, worst {}\n", gc.events.len(), gc.gc_total_time(), max_pause);
    }
    println!("The worst-case pause is what §1 calls GC-induced tail latency; offloading");
    println!("shortens every stop-the-world window the mutator would otherwise absorb.");
}
