//! Quickstart: build a simulated JVM heap, allocate an object graph, run a
//! MinorGC and a MajorGC on the DDR4 host and on Charon, and print what
//! happened.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use charon::gc::breakdown::Bucket;
use charon::gc::collector::Collector;
use charon::gc::system::System;
use charon::gc::verify::graph_signature;
use charon::heap::heap::{HeapConfig, JavaHeap};
use charon::heap::klass::KlassKind;

fn main() {
    for sys in [System::ddr4(), System::charon()] {
        let label = sys.label();

        // A 32 MB heap with HotSpot's default Young:Old = 1:2 sizing.
        let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(32 << 20));

        // Register application classes: a node with two reference fields
        // and a primitive array.
        let node = heap.klasses_mut().register("Node", KlassKind::Instance, 4, vec![0, 1]);
        let data = heap.klasses_mut().register_array("double[]", KlassKind::TypeArray);

        // The collector wraps the timing system (host, and the Charon
        // device when offloading).
        let mut gc = Collector::new(sys, &heap, 8);

        // Allocate a linked structure: each node keeps a payload array and
        // a reference to the previous node. Every tenth node is rooted;
        // everything else becomes garbage.
        let mut prev = charon::heap::VAddr::NULL;
        for i in 0..2_500 {
            let d = gc.alloc(&mut heap, data, 512).expect("heap sized generously");
            let n = gc.alloc(&mut heap, node, 0).expect("heap sized generously");
            let slots = heap.ref_slots(n);
            heap.store_ref_with_barrier(slots[0], d);
            if !prev.is_null() {
                heap.store_ref_with_barrier(slots[1], prev);
            }
            if i % 10 == 0 {
                heap.add_root(n);
                prev = charon::heap::VAddr::NULL;
            } else {
                prev = n;
            }
        }

        let (sig_before, stats) = graph_signature(&heap).expect("heap graph verifies");
        println!("[{label}] reachable: {} objects, {} KB", stats.objects, stats.bytes / 1024);

        let minor = gc.minor_gc(&mut heap);
        println!("[{label}] MinorGC pause: {} ({})", minor.wall, minor.breakdown);
        let major = gc.major_gc(&mut heap);
        println!("[{label}] MajorGC pause: {} ({})", major.wall, major.breakdown);

        // The moving collections preserved the graph bit-for-bit.
        let (sig_after, _) = graph_signature(&heap).expect("heap graph verifies");
        assert_eq!(sig_before, sig_after, "GC must preserve the reachable graph");

        let copy_share = gc
            .breakdown_by_kind(charon::gc::collector::GcKind::Minor)
            .fraction(Bucket::Copy);
        println!("[{label}] minor-GC Copy share: {:.0}%  | total GC: {}", copy_share * 100.0, gc.gc_total_time());
        println!("[{label}] energy: {}\n", gc.sys.energy.account());
    }
    println!("Charon finishes the same collections faster by offloading Copy/Search/Scan&Push/Bitmap Count");
    println!("to the HMC logic layer (see DESIGN.md and `cargo bench` for the full evaluation).");
}
