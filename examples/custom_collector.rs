//! Using the primitives beyond ParallelScavenge: a CMS-style old-generation
//! mark-sweep built on the same offloadable Scan&Push — the Table 1
//! applicability story as runnable code.
//!
//! The collector logic lives in this repository's `charon_gc::marksweep`;
//! this example drives it directly, shows which primitives fire (and that
//! Bitmap Count does not — CMS never compacts), and inspects the free list
//! the sweep produces.
//!
//! ```bash
//! cargo run --release --example custom_collector
//! ```

use charon::accel::PrimType;
use charon::gc::collector::Collector;
use charon::gc::marksweep::mark_sweep_old;
use charon::gc::system::System;
use charon::gc::threads::GcThreads;
use charon::gc::verify::graph_signature;
use charon::heap::heap::{HeapConfig, JavaHeap};
use charon::heap::VAddr;
use charon::workloads::mutator::Mutator;
use charon::workloads::spec::by_short;

fn main() {
    let spec = by_short("CC").expect("CC is in Table 3");
    let mut heap = JavaHeap::new(HeapConfig::with_heap_bytes(spec.default_heap_bytes()));
    let mut m = Mutator::new(spec.clone(), &mut heap);
    let mut gc = Collector::new(System::charon(), &heap, 8);

    // Build a graph, promote it, then kill a third of the roots so the old
    // generation holds garbage for the sweep.
    m.build_resident(&mut heap, &mut gc).expect("sized not to OOM");
    for _ in 0..4 {
        m.superstep(&mut heap, &mut gc).expect("sized not to OOM");
    }
    gc.major_gc(&mut heap);
    for i in 0..heap.root_count() {
        if i % 3 == 0 {
            heap.set_root(i, VAddr::NULL);
        }
    }

    let (sig, before) = graph_signature(&heap).expect("heap graph verifies");
    let offloads_before = gc.sys.device.as_ref().expect("Charon backend").stats().clone();

    // The custom collection: stop-the-world mark (offloaded Scan&Push) +
    // sweep with filler objects and a free list.
    let mut threads = GcThreads::new(8, gc.now);
    let (bd, stats, free_list) = mark_sweep_old(&mut gc.sys, &mut heap, &mut threads, m.klasses().data_array);
    let wall = threads.barrier() - gc.now;

    let (sig2, after) = graph_signature(&heap).expect("heap graph verifies");
    assert_eq!(sig, sig2, "mark-sweep must preserve the reachable graph");
    assert_eq!(before.objects, after.objects);

    println!("CMS-style old-gen mark-sweep over {}:", spec.name);
    println!("  pause {wall}, breakdown: {bd}");
    println!(
        "  marked {} objects; retained {} KB live in old, swept {} KB into {} free chunks",
        stats.marked_objects,
        stats.old_live_bytes / 1024,
        stats.freed_bytes / 1024,
        stats.free_chunks
    );
    let biggest = free_list.iter().map(|&(_, w)| w * 8).max().unwrap_or(0);
    println!("  largest free chunk: {} KB (free-list allocation would serve from here)", biggest / 1024);

    let d = gc.sys.device.as_ref().expect("Charon backend").stats().clone();
    println!("\nprimitives exercised by the custom collector (Table 1's CMS row):");
    for p in PrimType::ALL {
        let n = d.prim(p).offloads - offloads_before.prim(p).offloads;
        let note = match (p, n) {
            (PrimType::BitmapCount, 0) => "(not applicable: CMS never compacts)",
            (PrimType::Copy | PrimType::Search, 0) => "(the young scavenge's job; unused by the old-gen sweep)",
            _ => "",
        };
        println!("  {p:<14} {n} offloads {note}");
    }
}
