//! A Spark-style machine-learning workload (the paper's KM) on all four
//! evaluation platforms: the complete Fig. 12-style comparison for one
//! application, with per-primitive detail.
//!
//! Spark ML demographics (§3.2): partition-chunk allocations dominate the
//! bytes, so MinorGC time concentrates in *Copy* — the primitive with the
//! largest near-memory win.
//!
//! ```bash
//! cargo run --release --example spark_kmeans
//! ```

use charon::gc::breakdown::Bucket;
use charon::gc::system::System;
use charon::workloads::spec::by_short;
use charon::workloads::{run_workload, RunOptions};

fn main() {
    let spec = by_short("KM").expect("KM is in Table 3");
    println!("workload: {spec}");
    println!();

    let mut baseline = None;
    for sys in [System::ddr4(), System::hmc(), System::charon(), System::ideal()] {
        let label = sys.label();
        let r = run_workload(&spec, sys, &RunOptions::default()).expect("sized not to OOM");
        let base = *baseline.get_or_insert(r.gc_time);
        println!(
            "{label:<8} GC {:>12}  speedup {:>5.2}x  ({} minor + {} major pauses)",
            r.gc_time.to_string(),
            base.0 as f64 / r.gc_time.0.max(1) as f64,
            r.minor.1,
            r.major.1
        );
        println!(
            "         minor buckets: Copy {:.0}%  Scan&Push {:.0}%  Search {:.0}%  rest {:.0}%",
            r.minor_breakdown.fraction(Bucket::Copy) * 100.0,
            r.minor_breakdown.fraction(Bucket::ScanPush) * 100.0,
            r.minor_breakdown.fraction(Bucket::Search) * 100.0,
            (1.0 - r.minor_breakdown.offloadable_fraction()) * 100.0,
        );
        if let Some(dev) = &r.device {
            println!(
                "         offloads: {} total ({} Copy, {} Search, {} Scan&Push, {} Bitmap Count)",
                dev.total_offloads(),
                dev.prim(charon::accel::PrimType::Copy).offloads,
                dev.prim(charon::accel::PrimType::Search).offloads,
                dev.prim(charon::accel::PrimType::ScanPush).offloads,
                dev.prim(charon::accel::PrimType::BitmapCount).offloads,
            );
        }
        println!("         energy: {:.4} J, GC bandwidth {:.1} GB/s", r.energy.total_j(), r.gc_bandwidth_gbps());
        println!();
    }
}
